"""Worker pools: thread workers and process workers behind one contract.

A :class:`WorkerPool` is the execution half of a
:class:`~repro.serving.server.FrameServer`: the server's scheduler thread
forms micro-batches and hands them to ``pool.dispatch``; the pool runs each
batch on a warm :class:`~repro.session.Session` and resolves the
per-request futures in admission order.  The life cycle is::

    pool.start()            # build sessions / spawn workers
    pool.dispatch(batch)*   # scheduler thread, any number of times
    pool.end_of_stream()    # no more batches will ever arrive (idempotent)
    pool.join(timeout)      # wait for every dispatched batch + worker exit

:class:`ThreadWorkerPool` is PR 5's worker threads extracted behind the
contract: one warm session per thread, batches over a stdlib queue,
``None`` sentinels at end of stream.

:class:`ProcessWorkerPool` runs the same contract across **fork**-spawned
worker processes, each owning a warm session built *in the child* (the
factory closure rides the fork, nothing is pickled).  Micro-batches travel
as shared-memory messages (:mod:`repro.serving.cluster.transport`):

* the parent encodes a batch's requests into a ``repro-req-{pid}-{w}-{b}``
  segment and enqueues the tiny message on worker ``w``'s request queue;
* the child decodes (copying out of the segment), runs ``run_batch``, and
  ships the responses back in a ``repro-resp-{childpid}-{b}`` segment on
  the shared response queue, with its latest ``session.stats()`` riding
  along;
* a collector thread in the parent decodes the responses, resolves the
  futures, **acks** the batch back to the child (which then unlinks its
  response segment), and unlinks the request segment it created itself.

Segments are thus always unlinked by their creator, and never before the
receiver has copied the bytes out.  The deterministic names make crash
cleanup possible: when a child dies, the parent can attach-and-unlink the
response segments the corpse may have left behind.

Routing is **shape-key affine**: the first batch of a warm-shape key picks
the worker with the fewest assigned keys (ties to the lowest index) and
the key sticks, so each process accumulates a small warm set instead of
every process warming every shape.

Crash semantics: the collector polls the response queue with a short
timeout and sweeps ``process.is_alive()`` between polls.  A dead worker
fails exactly its in-flight batches' futures with :class:`WorkerCrashed`
(descriptive: worker name, pid, exit code), reclaims their segments, and
is respawned with a fresh process and request queue -- unless the pool is
already draining, in which case the slot is simply retired.  The server
keeps serving and still drains cleanly.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import queue as _stdlib_queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.serving.cluster.transport import (
    SharedMemoryArena,
    TransportError,
    decode_payload,
    decode_requests,
    encode_payload,
    encode_requests,
    shared_memory_available,
)
from repro.serving.metrics import Clock, RequestRecord, ServingMetrics
from repro.serving.scheduler import MicroBatch
from repro.session import Session

#: Collector poll interval; also the crash-sweep cadence.
_POLL_SECONDS = 0.05

#: How long a draining child waits for outstanding response-segment acks.
_ACK_WAIT_SECONDS = 5.0


class WorkerCrashed(RuntimeError):
    """A worker process died while its batches were in flight."""


class WorkerError(RuntimeError):
    """A worker raised while serving a batch (re-raised in the parent)."""


class WorkerPool:
    """Shared contract + completion logic for the execution pools."""

    def __init__(
        self,
        session_factory: Callable[[], Session],
        num_workers: int,
        metrics: ServingMetrics,
        clock: Clock,
        name: str,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.session_factory = session_factory
        self.num_workers = int(num_workers)
        self.metrics = metrics
        self.clock = clock
        self.name = name

    # -- contract --------------------------------------------------------
    def start(self) -> None:
        raise NotImplementedError

    def dispatch(self, batch: MicroBatch) -> None:
        raise NotImplementedError

    def end_of_stream(self) -> None:
        raise NotImplementedError

    def join(self, timeout: Optional[float] = None) -> None:
        raise NotImplementedError

    def shape_key(self, cloud) -> Tuple[Any, ...]:
        raise NotImplementedError

    def worker_stats(self) -> List[dict]:
        raise NotImplementedError

    def default_batch_rows_budget(self) -> Optional[int]:
        """The sessions' own rows budget (scheduler default)."""
        raise NotImplementedError

    # -- shared completion path ------------------------------------------
    def _complete_batch(
        self,
        batch: MicroBatch,
        dispatched_at: float,
        completed_at: float,
        responses: Optional[List[Any]],
        error: Optional[BaseException],
        worker_name: str,
    ) -> None:
        """Resolve a batch's futures in admission order and record metrics."""
        if responses is None:
            responses = [None] * len(batch.entries)
        for entry, response in zip(batch.entries, responses):
            completion_index = self.metrics.next_completion_index()
            if entry.future.set_running_or_notify_cancel():
                if error is None:
                    entry.future.set_result(response)
                else:
                    entry.future.set_exception(error)
            self.metrics.record(
                RequestRecord(
                    sequence=entry.sequence,
                    frame_id=entry.request.frame_id,
                    enqueued_at=entry.enqueued_at,
                    dispatched_at=dispatched_at,
                    completed_at=completed_at,
                    completion_index=completion_index,
                    batch_id=batch.batch_id,
                    batch_size=len(batch.entries),
                    trigger=batch.trigger,
                    worker=worker_name,
                    ok=error is None,
                )
            )


class ThreadWorkerPool(WorkerPool):
    """PR 5's warm-session worker threads behind the pool contract."""

    def __init__(
        self,
        session_factory: Callable[[], Session],
        num_workers: int,
        metrics: ServingMetrics,
        clock: Clock,
        name: str,
    ):
        super().__init__(session_factory, num_workers, metrics, clock, name)
        self.sessions: List[Session] = []
        self._dispatch: "_stdlib_queue.Queue[Optional[MicroBatch]]" = (
            _stdlib_queue.Queue()
        )
        self._threads: List[threading.Thread] = []
        self._eos = False
        self._eos_lock = threading.Lock()

    def start(self) -> None:
        self.sessions = [self.session_factory() for _ in range(self.num_workers)]
        if len(set(map(id, self.sessions))) != len(self.sessions):
            raise ValueError(
                "session_factory must build a distinct Session per worker"
            )
        for worker_index in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(worker_index,),
                name=f"{self.name}-worker-{worker_index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def dispatch(self, batch: MicroBatch) -> None:
        self._dispatch.put(batch)

    def end_of_stream(self) -> None:
        with self._eos_lock:
            if self._eos:
                return
            self._eos = True
        for _ in range(self.num_workers):
            self._dispatch.put(None)

    def join(self, timeout: Optional[float] = None) -> None:
        for thread in self._threads:
            thread.join(timeout)

    def shape_key(self, cloud) -> Tuple[Any, ...]:
        return self.sessions[0].shape_key(cloud)

    def worker_stats(self) -> List[dict]:
        return [session.stats() for session in self.sessions]

    def default_batch_rows_budget(self) -> Optional[int]:
        return self.sessions[0].batch_rows_budget

    def _worker_loop(self, worker_index: int) -> None:
        session = self.sessions[worker_index]
        worker_name = f"{self.name}-worker-{worker_index}"
        while True:
            batch = self._dispatch.get()
            if batch is None:
                break
            dispatched_at = self.clock()
            for entry in batch.entries:
                entry.dispatched_at = dispatched_at
            try:
                result = session.run_batch(
                    [entry.request for entry in batch.entries]
                )
                responses: Optional[List[Any]] = list(result.responses)
                error: Optional[BaseException] = None
            except Exception as exc:  # resolve futures, keep serving
                responses, error = None, exc
            self._complete_batch(
                batch, dispatched_at, self.clock(), responses, error, worker_name
            )


# ----------------------------------------------------------------------
# Process pool
# ----------------------------------------------------------------------
def _request_segment_name(parent_pid: int, worker_index: int, batch_id: int) -> str:
    return f"repro-req-{parent_pid}-{worker_index}-{batch_id}"


def _response_segment_name(child_pid: int, batch_id: int) -> str:
    return f"repro-resp-{child_pid}-{batch_id}"


def _process_worker_main(
    worker_index: int,
    session_factory: Callable[[], Session],
    request_queue,
    response_queue,
    force_inline: bool,
    ack_wait_seconds: float,
) -> None:
    """Child entry point: warm session, serve batches until ``stop``."""
    session = session_factory()
    arena = SharedMemoryArena(prefix=f"repro-resp-{os.getpid()}")
    unacked: Dict[int, str] = {}

    def _apply_ack(batch_id: int) -> None:
        segment = unacked.pop(batch_id, None)
        if segment is not None:
            arena.release(segment)

    try:
        while True:
            message = request_queue.get()
            kind = message[0]
            if kind == "ack":
                _apply_ack(message[1])
            elif kind == "batch":
                _, batch_id, wire = message
                try:
                    requests = decode_requests(wire)
                    result = session.run_batch(requests)
                    payload: Dict[str, Any] = {
                        "responses": list(result.responses),
                        "error": None,
                    }
                except Exception as exc:
                    payload = {
                        "responses": None,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                out = encode_payload(
                    payload,
                    arena=arena,
                    segment_name=_response_segment_name(os.getpid(), batch_id),
                    force_inline=force_inline,
                )
                if out.segment is not None:
                    unacked[batch_id] = out.segment
                response_queue.put(
                    ("result", worker_index, batch_id, out, session.stats())
                )
            elif kind == "stop":
                # Hold un-acked response segments until the parent has
                # copied them out (it acks each one); bounded wait so a
                # vanished parent cannot wedge the child.
                deadline = time.monotonic() + ack_wait_seconds
                while unacked and time.monotonic() < deadline:
                    try:
                        message = request_queue.get(timeout=0.1)
                    except _stdlib_queue.Empty:
                        continue
                    if message[0] == "ack":
                        _apply_ack(message[1])
                response_queue.put(("bye", worker_index, session.stats()))
                break
    finally:
        arena.release_all()


@dataclasses.dataclass
class _WorkerHandle:
    """Parent-side view of one worker process slot."""

    index: int
    generation: int
    process: Any
    request_queue: Any
    #: True once the worker said "bye" or was declared dead.
    done: bool = False


@dataclasses.dataclass
class _InFlight:
    """A dispatched batch the parent is waiting on."""

    batch: MicroBatch
    worker_index: int
    generation: int
    dispatched_at: float
    #: Request segment name (parent-owned), None on the inline path.
    segment: Optional[str]


class ProcessWorkerPool(WorkerPool):
    """Warm-session worker *processes* with shared-memory batch transport.

    Requires the ``fork`` start method (session factories are ordinary
    closures; fork inherits them, nothing crosses a pickle boundary except
    the transport messages).  Raises :class:`TransportError` where fork is
    unavailable.  When :mod:`multiprocessing.shared_memory` is missing (or
    ``force_inline`` is set) the transport carries the bytes inline through
    the queues -- slower, byte-identical.
    """

    def __init__(
        self,
        session_factory: Callable[[], Session],
        num_workers: int,
        metrics: ServingMetrics,
        clock: Clock,
        name: str,
        force_inline: bool = False,
        ack_wait_seconds: float = _ACK_WAIT_SECONDS,
    ):
        super().__init__(session_factory, num_workers, metrics, clock, name)
        if "fork" not in multiprocessing.get_all_start_methods():
            raise TransportError(
                "ProcessWorkerPool needs the 'fork' start method, which is "
                "unavailable on this platform; use execution='thread'"
            )
        self._ctx = multiprocessing.get_context("fork")
        self._force_inline = bool(force_inline) or not shared_memory_available()
        self._ack_wait_seconds = ack_wait_seconds
        self._arena = SharedMemoryArena(prefix=f"repro-req-{os.getpid()}")
        self._probe: Optional[Session] = None
        self._workers: List[_WorkerHandle] = []
        self._response_queue = None
        self._collector: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._in_flight: Dict[int, _InFlight] = {}
        self._affinity: Dict[Any, int] = {}
        self._latest_stats: List[Optional[dict]] = []
        self._eos = False
        self._all_done = threading.Event()
        #: Number of crash-recovery respawns performed (observable in tests).
        self.respawns = 0

    # -- life cycle ------------------------------------------------------
    def start(self) -> None:
        # The probe session never runs a frame; it answers shape_key()
        # queries in the parent (warm state lives in the children).
        self._probe = self.session_factory()
        self._latest_stats = [None] * self.num_workers
        if not self._force_inline:
            # Start the shm resource tracker *before* forking so parent and
            # children share one tracker process.  With a single tracker,
            # the creator-registers/attacher-registers/creator-unregisters
            # traffic collapses cleanly in its set-based cache; with one
            # tracker per process (the lazy default) each sees an
            # unbalanced half and warns about already-unlinked "leaks".
            try:
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:
                pass
        self._response_queue = self._ctx.Queue()
        # Spawn before any dispatching threads exist so the forks do not
        # duplicate a thread holding a lock.
        self._workers = [
            self._spawn(index, generation=0) for index in range(self.num_workers)
        ]
        self._collector = threading.Thread(
            target=self._collector_loop,
            name=f"{self.name}-collector",
            daemon=True,
        )
        self._collector.start()

    def _spawn(self, index: int, generation: int) -> _WorkerHandle:
        request_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_process_worker_main,
            args=(
                index,
                self.session_factory,
                request_queue,
                self._response_queue,
                self._force_inline,
                self._ack_wait_seconds,
            ),
            name=f"{self.name}-proc-{index}",
            daemon=True,
        )
        process.start()
        return _WorkerHandle(
            index=index,
            generation=generation,
            process=process,
            request_queue=request_queue,
        )

    def dispatch(self, batch: MicroBatch) -> None:
        worker_index = self._route(batch.key)
        dispatched_at = self.clock()
        for entry in batch.entries:
            entry.dispatched_at = dispatched_at
        wire = encode_requests(
            [entry.request for entry in batch.entries],
            arena=self._arena,
            segment_name=_request_segment_name(
                os.getpid(), worker_index, batch.batch_id
            ),
            force_inline=self._force_inline,
        )
        # Handle lookup, in-flight registration, and the enqueue happen
        # under one lock so a concurrent crash-respawn cannot swap the
        # handle between the lookup and the put.
        with self._lock:
            handle = self._workers[worker_index]
            self._in_flight[batch.batch_id] = _InFlight(
                batch=batch,
                worker_index=worker_index,
                generation=handle.generation,
                dispatched_at=dispatched_at,
                segment=wire.segment,
            )
            handle.request_queue.put(("batch", batch.batch_id, wire))

    def _route(self, key: Any) -> int:
        """Shape-key-affine placement: sticky, least-loaded on first sight."""
        with self._lock:
            worker_index = self._affinity.get(key)
            if worker_index is None:
                counts = [0] * self.num_workers
                for assigned in self._affinity.values():
                    counts[assigned] += 1
                worker_index = min(
                    range(self.num_workers), key=lambda i: (counts[i], i)
                )
                self._affinity[key] = worker_index
            return worker_index

    def end_of_stream(self) -> None:
        with self._lock:
            if self._eos:
                return
            self._eos = True
            handles = list(self._workers)
        # Request queues are FIFO, so "stop" lands after every dispatched
        # batch; draining children still read acks past it.
        for handle in handles:
            try:
                handle.request_queue.put(("stop",))
            except Exception:
                pass

    def join(self, timeout: Optional[float] = None) -> None:
        self.end_of_stream()
        self._all_done.wait(timeout)
        if self._collector is not None:
            self._collector.join(timeout)
        for handle in self._workers:
            handle.process.join(timeout)
            if handle.process.is_alive():  # refuse to hang the caller
                handle.process.terminate()
                handle.process.join(1.0)
            try:
                handle.request_queue.close()
                handle.request_queue.cancel_join_thread()
            except Exception:
                pass
        if self._response_queue is not None:
            try:
                self._response_queue.close()
                self._response_queue.cancel_join_thread()
            except Exception:
                pass
        self._arena.release_all()

    # -- introspection ---------------------------------------------------
    def shape_key(self, cloud) -> Tuple[Any, ...]:
        assert self._probe is not None, "pool not started"
        return self._probe.shape_key(cloud)

    def worker_stats(self) -> List[dict]:
        """Latest ``session.stats()`` reported by each worker process."""
        with self._lock:
            return [dict(stats) if stats else {} for stats in self._latest_stats]

    def default_batch_rows_budget(self) -> Optional[int]:
        assert self._probe is not None, "pool not started"
        return self._probe.batch_rows_budget

    def affinity_map(self) -> Dict[Any, int]:
        """Warm-shape key -> worker index (snapshot)."""
        with self._lock:
            return dict(self._affinity)

    # -- collector thread ------------------------------------------------
    def _collector_loop(self) -> None:
        try:
            while True:
                try:
                    message = self._response_queue.get(timeout=_POLL_SECONDS)
                except _stdlib_queue.Empty:
                    message = None
                if message is not None:
                    if message[0] == "result":
                        self._handle_result(message)
                    elif message[0] == "bye":
                        _, worker_index, stats = message
                        with self._lock:
                            self._latest_stats[worker_index] = stats
                            self._workers[worker_index].done = True
                self._sweep_crashes()
                with self._lock:
                    if (
                        self._eos
                        and not self._in_flight
                        and all(
                            h.done or not h.process.is_alive()
                            for h in self._workers
                        )
                    ):
                        break
        finally:
            self._all_done.set()

    def _handle_result(self, message: Tuple[Any, ...]) -> None:
        _, worker_index, batch_id, wire, stats = message
        with self._lock:
            info = self._in_flight.pop(batch_id, None)
            self._latest_stats[worker_index] = stats
            handle = self._workers[worker_index]
        worker_name = f"{self.name}-proc-{worker_index}"
        responses: Optional[List[Any]] = None
        error: Optional[BaseException] = None
        try:
            payload = decode_payload(wire)
        except TransportError as exc:
            error = WorkerError(
                f"{worker_name}: response transport failed: {exc}"
            )
        else:
            if payload["error"] is not None:
                error = WorkerError(f"{worker_name}: {payload['error']}")
            else:
                responses = payload["responses"]
        # Ack so the child can unlink its response segment; reclaim the
        # request segment this side created.
        try:
            handle.request_queue.put(("ack", batch_id))
        except Exception:
            pass
        if info is not None:
            if info.segment is not None:
                self._arena.release(info.segment)
            self._complete_batch(
                info.batch,
                info.dispatched_at,
                self.clock(),
                responses,
                error,
                worker_name,
            )
        elif wire.segment is not None:
            # Result for a batch the crash sweep already failed (the
            # worker responded and died before we noticed): reclaim the
            # orphaned response segment.
            self._arena.release(wire.segment)

    def _sweep_crashes(self) -> None:
        casualties: List[Tuple[_WorkerHandle, List[Tuple[int, _InFlight]]]] = []
        with self._lock:
            for slot, handle in enumerate(list(self._workers)):
                if handle.done or handle.process.is_alive():
                    continue
                handle.done = True
                batches: List[Tuple[int, _InFlight]] = []
                for batch_id, info in list(self._in_flight.items()):
                    if (
                        info.worker_index == handle.index
                        and info.generation == handle.generation
                    ):
                        del self._in_flight[batch_id]
                        batches.append((batch_id, info))
                if not self._eos:
                    # Replace the handle inside this same critical section:
                    # dispatch() reads the handle and registers in-flight
                    # under the lock, so a batch can never be enqueued on
                    # the dead worker's queue after its casualties were
                    # collected (it either lands in `batches` above or on
                    # the fresh replacement).
                    self._workers[slot] = self._spawn(
                        handle.index, generation=handle.generation + 1
                    )
                    self.respawns += 1
                casualties.append((handle, batches))
        for handle, batches in casualties:
            worker_name = f"{self.name}-proc-{handle.index}"
            pid = handle.process.pid
            error = WorkerCrashed(
                f"worker process {worker_name} (pid {pid}) died with exit "
                f"code {handle.process.exitcode} while {len(batches)} "
                f"batch(es) were in flight"
            )
            for batch_id, info in batches:
                if info.segment is not None:
                    self._arena.release(info.segment)
                if pid is not None:
                    # Best-effort reclaim of a response segment the corpse
                    # may have created for this batch.
                    self._arena.release(_response_segment_name(pid, batch_id))
                self._complete_batch(
                    info.batch,
                    info.dispatched_at,
                    self.clock(),
                    None,
                    error,
                    worker_name,
                )
