"""Consistent-hash routing across N in-process ``FrameServer`` shards.

A :class:`ShardRouter` is the single-box version of a serving cluster:
``num_shards`` independent :class:`~repro.serving.server.FrameServer`
instances (each with its own admission queue, scheduler, and worker pool)
behind one ``submit``.  Placement hashes the request's **warm-shape key**
-- the same ``(task, sampled_size, feature_channels)`` tuple the
micro-batch scheduler groups on -- so all frames of one shape land on one
shard and that shard's workers stay warm for it, while distinct shapes
spread across shards.

The hash is a classic consistent-hash ring (:class:`HashRing`): each shard
contributes ``replicas`` virtual points placed by SHA-1 (Python's builtin
``hash`` is salted per process and would re-deal the ring every run);
lookups take the first point clockwise from the key's hash.  Removing a
shard therefore only re-homes the keys that pointed at it -- the rest of
the ring is untouched, which is what makes :meth:`remove_shard`
*drain-aware*: the ring drops the shard first (new submissions rebalance
immediately), then the shard drains its already-admitted requests to
completion before its snapshot is returned.

Failover: when the ring owner of a key is down (stopped, or its circuit
breaker is open), :meth:`ShardRouter.submit` **walks the ring** to the next
healthy shard instead of failing -- same deterministic order every time,
since the walk is just the ring's own point order.  Each shard is guarded
by a :class:`~repro.serving.resilience.CircuitBreaker` (closed -> open on
consecutive failures -> half-open probe), fed by both submit-time errors
(``QueueClosed``: the shard is gone) and the terminal state of the futures
it accepted.  ``QueueFull`` is backpressure, not sickness: it falls over to
the next shard without charging the breaker.

Observability: :meth:`metrics` merges the per-shard
:class:`~repro.serving.metrics.ServingMetrics` into one view via
``ServingMetrics.merge`` (batch ids and completion indices re-keyed per
source so the per-batch future-ordering check survives) plus the router's
own failover / breaker-trip counters, and :meth:`shard_health` reports
per-shard liveness, breaker state, and stats.
"""

from __future__ import annotations

import bisect
import dataclasses
import hashlib
import itertools
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.serving.faults import FaultPlan
from repro.serving.metrics import Clock, ServingMetrics
from repro.serving.policy import LoadShed, RateLimitExceeded, ServingPolicy
from repro.serving.queue import QueueFull
from repro.serving.resilience import (
    CircuitBreaker,
    DeadlineExceeded,
    NoHealthyShard,
    RetryPolicy,
)
from repro.session import (
    FrameLike,
    FrameRequest,
    Session,
    SubmitOptions,
    _UNSET,
)

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle
    from repro.serving.server import FrameServer

#: Virtual ring points per shard; 64 keeps the key spread within a few
#: percent of uniform without making ring edits noticeable.
DEFAULT_REPLICAS = 64


def _ring_hash(data: str) -> int:
    """Stable 64-bit ring position (SHA-1; ``hash()`` is per-process salted)."""
    return int.from_bytes(hashlib.sha1(data.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring of named nodes with virtual replicas."""

    def __init__(self, replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._points: List[Tuple[int, str]] = []
        self._names: set = set()

    def add(self, name: str) -> None:
        if name in self._names:
            raise ValueError(f"ring already contains {name!r}")
        self._names.add(name)
        for i in range(self.replicas):
            bisect.insort(self._points, (_ring_hash(f"{name}#{i}"), name))

    def remove(self, name: str) -> None:
        if name not in self._names:
            raise KeyError(name)
        self._names.discard(name)
        self._points = [p for p in self._points if p[1] != name]

    def locate(self, key: Any) -> str:
        """Name owning ``key``: first ring point clockwise from its hash."""
        if not self._points:
            raise LookupError("hash ring is empty")
        position = _ring_hash(repr(key))
        index = bisect.bisect_right(self._points, (position, ""))
        if index == len(self._points):  # wrap past the top of the ring
            index = 0
        return self._points[index][1]

    def walk(self, key: Any) -> List[str]:
        """Every distinct name clockwise from ``key``'s hash, owner first.

        This is the failover order: the owner, then each next shard in
        ring order -- deterministic for a given ring membership.
        """
        if not self._points:
            raise LookupError("hash ring is empty")
        position = _ring_hash(repr(key))
        start = bisect.bisect_right(self._points, (position, ""))
        seen: List[str] = []
        for offset in range(len(self._points)):
            name = self._points[(start + offset) % len(self._points)][1]
            if name not in seen:
                seen.append(name)
        return seen

    @property
    def names(self) -> List[str]:
        return sorted(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._names


class ShardRouter:
    """N in-process FrameServer shards behind one consistent-hash submit.

    Constructor parameters mirror :class:`FrameServer` -- each shard is
    built with the same ``session_factory`` and serving knobs, under the
    name ``{name}-shard-{i}``.
    """

    def __init__(
        self,
        session_factory: Callable[[], Session],
        num_shards: int = 2,
        num_workers: int = 1,
        execution: str = "thread",
        max_batch_size: int = 8,
        max_wait_seconds: float = 0.005,
        queue_capacity: int = 256,
        batch_rows_budget: Optional[int] = None,
        clock: Clock = time.monotonic,
        name: str = "router",
        replicas: int = DEFAULT_REPLICAS,
        faults: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_failure_threshold: int = 3,
        breaker_reset_seconds: float = 5.0,
        policy: Optional[ServingPolicy] = None,
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        from repro.serving.server import FrameServer

        self.session_factory = session_factory
        self.num_shards = int(num_shards)
        self.name = name
        self.clock = clock
        #: Router-level counters (failovers, breaker trips); merged into
        #: :meth:`metrics` alongside the shard metrics.
        self.router_metrics = ServingMetrics()
        self.shards: Dict[str, "FrameServer"] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        for i in range(self.num_shards):
            shard_name = f"{name}-shard-{i}"
            self.shards[shard_name] = FrameServer(
                session_factory=session_factory,
                num_workers=num_workers,
                execution=execution,
                max_batch_size=max_batch_size,
                max_wait_seconds=max_wait_seconds,
                queue_capacity=queue_capacity,
                batch_rows_budget=batch_rows_budget,
                clock=clock,
                name=shard_name,
                faults=faults,
                retry_policy=retry_policy,
                policy=policy,
            )
            self._breakers[shard_name] = CircuitBreaker(
                failure_threshold=breaker_failure_threshold,
                reset_seconds=breaker_reset_seconds,
                clock=clock,
            )
        self._ring = HashRing(replicas=replicas)
        self._probe: Optional[Session] = None
        self._counter = itertools.count()
        self._lock = threading.Lock()
        self._removed: Dict[str, dict] = {}
        self._started = False
        self._stopped = False

    # -- life cycle ------------------------------------------------------
    def start(self) -> "ShardRouter":
        with self._lock:
            if self._started:
                return self
            if self._stopped:
                raise RuntimeError("ShardRouter cannot be restarted")
            self._probe = self.session_factory()
            self._started = True
        for shard_name, shard in self.shards.items():
            shard.start()
            self._ring.add(shard_name)
        return self

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> dict:
        """Shut every live shard down; returns the merged final stats."""
        with self._lock:
            self._stopped = True
            live = [n for n in self.shards if n not in self._removed]
        for shard_name in live:
            self.shards[shard_name].shutdown(drain=drain, timeout=timeout)
            with self._lock:
                if shard_name in self._ring:
                    self._ring.remove(shard_name)
        return self.stats()

    # -- request entry ---------------------------------------------------
    def route(self, frame: FrameLike) -> str:
        """Shard name that would serve ``frame`` (no submission)."""
        request = FrameRequest.coerce(frame)
        assert self._probe is not None, "router not started"
        key = self._probe.shape_key(request.cloud)
        with self._lock:
            return self._ring.locate(key)

    def submit(
        self,
        frame: FrameLike,
        frame_id: Optional[str] = None,
        options: Optional[SubmitOptions] = None,
        *,
        block: object = _UNSET,
        timeout: object = _UNSET,
        ttl: object = _UNSET,
    ):
        """Admit one frame on its consistent-hash shard; returns a future.

        Per-request knobs travel as one
        :class:`~repro.session.SubmitOptions` (legacy ``block``/
        ``timeout``/``ttl`` kwargs still work behind a deprecation shim).

        When the ring owner is down -- stopped, breaker-open, or erroring
        at submit -- the request **fails over** along the ring to the next
        healthy shard.  ``QueueFull`` also falls over (without charging
        the owner's breaker: backpressure is load, not sickness).  Raises
        :class:`~repro.serving.resilience.NoHealthyShard` when every shard
        was skipped as unhealthy, else re-raises the last submit error.
        """
        if not self._started:
            self.start()
        options = SubmitOptions.coerce(
            options, block=block, timeout=timeout, ttl=ttl,
            caller="ShardRouter.submit",
        )
        request = FrameRequest.coerce(frame, index=next(self._counter))
        if frame_id is not None:
            request = dataclasses.replace(request, frame_id=frame_id)
        assert self._probe is not None
        key = self._probe.shape_key(request.cloud)
        with self._lock:
            order = self._ring.walk(key)
        last_error: Optional[BaseException] = None
        for position, shard_name in enumerate(order):
            shard = self.shards[shard_name]
            breaker = self._breakers[shard_name]
            if not shard.running:
                continue
            if not breaker.allow():
                continue
            try:
                future = shard.submit(request, options=options)
            except QueueFull as exc:
                breaker.record_probe_release()
                last_error = exc
                continue
            except Exception as exc:
                # QueueClosed or anything unexpected: the shard is sick.
                if breaker.record_failure():
                    self.router_metrics.record_breaker_trip()
                last_error = exc
                continue
            if position > 0:
                self.router_metrics.record_failover()
            future.add_done_callback(self._breaker_feedback(shard_name))
            return future
        if last_error is not None:
            raise last_error
        raise NoHealthyShard(
            f"no healthy shard for key {key!r}: "
            + ", ".join(
                f"{n}={self._breakers[n].state}"
                + ("" if self.shards[n].running else "/stopped")
                for n in order
            )
        )

    def _breaker_feedback(self, shard_name: str):
        """Done-callback feeding a future's terminal state to the breaker."""
        breaker = self._breakers[shard_name]

        def _observe(future) -> None:
            if future.cancelled():
                breaker.record_probe_release()
                return
            error = future.exception()
            if error is None:
                breaker.record_success()
            elif isinstance(
                error, (DeadlineExceeded, LoadShed, RateLimitExceeded)
            ):
                # A shed deadline says the *client's* TTL ran out before
                # dispatch; load sheds and rate limits are the policy
                # working as configured -- no verdict on shard health.
                breaker.record_probe_release()
            elif breaker.record_failure():
                self.router_metrics.record_breaker_trip()

        return _observe

    # -- membership ------------------------------------------------------
    def remove_shard(self, shard_name: str, drain: bool = True) -> dict:
        """Retire one shard: re-home its keys, drain it, return its stats.

        The ring entry is dropped *before* the drain, so submissions
        arriving mid-drain already rebalance to the surviving shards while
        the retiring shard completes everything it had admitted.
        """
        with self._lock:
            if shard_name not in self.shards:
                raise KeyError(shard_name)
            if shard_name in self._removed:
                return dict(self._removed[shard_name])
            if shard_name in self._ring:
                self._ring.remove(shard_name)
        snapshot = self.shards[shard_name].shutdown(drain=drain)
        with self._lock:
            self._removed[shard_name] = snapshot
        return snapshot

    @property
    def active_shards(self) -> List[str]:
        with self._lock:
            return self._ring.names

    # -- observability ---------------------------------------------------
    def metrics(self) -> ServingMetrics:
        """Merged ServingMetrics across every shard (removed ones included),
        plus the router's own failover / breaker-trip counters."""
        return ServingMetrics.merge(
            [shard.metrics for shard in self.shards.values()]
            + [self.router_metrics]
        )

    def breaker_states(self) -> Dict[str, dict]:
        """Per-shard circuit-breaker state and trip count."""
        return {
            shard_name: {"state": breaker.state, "trips": breaker.trips}
            for shard_name, breaker in self._breakers.items()
        }

    def shard_health(self) -> Dict[str, dict]:
        """Per-shard liveness, breaker state, and live stats snapshot."""
        health: Dict[str, dict] = {}
        with self._lock:
            removed = set(self._removed)
        for shard_name, shard in self.shards.items():
            breaker = self._breakers[shard_name]
            health[shard_name] = {
                "running": shard.running,
                "removed": shard_name in removed,
                "breaker": {"state": breaker.state, "trips": breaker.trips},
                "stats": shard.stats(),
            }
        return health

    def stats(self) -> dict:
        """Merged snapshot plus per-shard and breaker breakdowns."""
        merged = self.metrics().snapshot()
        merged["shards"] = {
            shard_name: shard.stats()
            for shard_name, shard in self.shards.items()
        }
        merged["breakers"] = self.breaker_states()
        return merged
