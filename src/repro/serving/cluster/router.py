"""Consistent-hash routing across N in-process ``FrameServer`` shards.

A :class:`ShardRouter` is the single-box version of a serving cluster:
``num_shards`` independent :class:`~repro.serving.server.FrameServer`
instances (each with its own admission queue, scheduler, and worker pool)
behind one ``submit``.  Placement hashes the request's **warm-shape key**
-- the same ``(task, sampled_size, feature_channels)`` tuple the
micro-batch scheduler groups on -- so all frames of one shape land on one
shard and that shard's workers stay warm for it, while distinct shapes
spread across shards.

The hash is a classic consistent-hash ring (:class:`HashRing`): each shard
contributes ``replicas`` virtual points placed by SHA-1 (Python's builtin
``hash`` is salted per process and would re-deal the ring every run);
lookups take the first point clockwise from the key's hash.  Removing a
shard therefore only re-homes the keys that pointed at it -- the rest of
the ring is untouched, which is what makes :meth:`remove_shard`
*drain-aware*: the ring drops the shard first (new submissions rebalance
immediately), then the shard drains its already-admitted requests to
completion before its snapshot is returned.

Observability: :meth:`metrics` merges the per-shard
:class:`~repro.serving.metrics.ServingMetrics` into one view via
``ServingMetrics.merge`` (batch ids and completion indices re-keyed per
source so the per-batch future-ordering check survives), and
:meth:`shard_health` reports per-shard liveness and stats.
"""

from __future__ import annotations

import bisect
import dataclasses
import hashlib
import itertools
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.serving.metrics import Clock, ServingMetrics
from repro.session import FrameLike, FrameRequest, Session

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle
    from repro.serving.server import FrameServer

#: Virtual ring points per shard; 64 keeps the key spread within a few
#: percent of uniform without making ring edits noticeable.
DEFAULT_REPLICAS = 64


def _ring_hash(data: str) -> int:
    """Stable 64-bit ring position (SHA-1; ``hash()`` is per-process salted)."""
    return int.from_bytes(hashlib.sha1(data.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring of named nodes with virtual replicas."""

    def __init__(self, replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._points: List[Tuple[int, str]] = []
        self._names: set = set()

    def add(self, name: str) -> None:
        if name in self._names:
            raise ValueError(f"ring already contains {name!r}")
        self._names.add(name)
        for i in range(self.replicas):
            bisect.insort(self._points, (_ring_hash(f"{name}#{i}"), name))

    def remove(self, name: str) -> None:
        if name not in self._names:
            raise KeyError(name)
        self._names.discard(name)
        self._points = [p for p in self._points if p[1] != name]

    def locate(self, key: Any) -> str:
        """Name owning ``key``: first ring point clockwise from its hash."""
        if not self._points:
            raise LookupError("hash ring is empty")
        position = _ring_hash(repr(key))
        index = bisect.bisect_right(self._points, (position, ""))
        if index == len(self._points):  # wrap past the top of the ring
            index = 0
        return self._points[index][1]

    @property
    def names(self) -> List[str]:
        return sorted(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._names


class ShardRouter:
    """N in-process FrameServer shards behind one consistent-hash submit.

    Constructor parameters mirror :class:`FrameServer` -- each shard is
    built with the same ``session_factory`` and serving knobs, under the
    name ``{name}-shard-{i}``.
    """

    def __init__(
        self,
        session_factory: Callable[[], Session],
        num_shards: int = 2,
        num_workers: int = 1,
        execution: str = "thread",
        max_batch_size: int = 8,
        max_wait_seconds: float = 0.005,
        queue_capacity: int = 256,
        batch_rows_budget: Optional[int] = None,
        clock: Clock = time.monotonic,
        name: str = "router",
        replicas: int = DEFAULT_REPLICAS,
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        from repro.serving.server import FrameServer

        self.session_factory = session_factory
        self.num_shards = int(num_shards)
        self.name = name
        self.clock = clock
        self.shards: Dict[str, "FrameServer"] = {}
        for i in range(self.num_shards):
            shard_name = f"{name}-shard-{i}"
            self.shards[shard_name] = FrameServer(
                session_factory=session_factory,
                num_workers=num_workers,
                execution=execution,
                max_batch_size=max_batch_size,
                max_wait_seconds=max_wait_seconds,
                queue_capacity=queue_capacity,
                batch_rows_budget=batch_rows_budget,
                clock=clock,
                name=shard_name,
            )
        self._ring = HashRing(replicas=replicas)
        self._probe: Optional[Session] = None
        self._counter = itertools.count()
        self._lock = threading.Lock()
        self._removed: Dict[str, dict] = {}
        self._started = False
        self._stopped = False

    # -- life cycle ------------------------------------------------------
    def start(self) -> "ShardRouter":
        with self._lock:
            if self._started:
                return self
            if self._stopped:
                raise RuntimeError("ShardRouter cannot be restarted")
            self._probe = self.session_factory()
            self._started = True
        for shard_name, shard in self.shards.items():
            shard.start()
            self._ring.add(shard_name)
        return self

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> dict:
        """Shut every live shard down; returns the merged final stats."""
        with self._lock:
            self._stopped = True
            live = [n for n in self.shards if n not in self._removed]
        for shard_name in live:
            self.shards[shard_name].shutdown(drain=drain, timeout=timeout)
            with self._lock:
                if shard_name in self._ring:
                    self._ring.remove(shard_name)
        return self.stats()

    # -- request entry ---------------------------------------------------
    def route(self, frame: FrameLike) -> str:
        """Shard name that would serve ``frame`` (no submission)."""
        request = FrameRequest.coerce(frame)
        assert self._probe is not None, "router not started"
        key = self._probe.shape_key(request.cloud)
        with self._lock:
            return self._ring.locate(key)

    def submit(
        self,
        frame: FrameLike,
        frame_id: Optional[str] = None,
        block: bool = False,
        timeout: Optional[float] = None,
    ):
        """Admit one frame on its consistent-hash shard; returns a future."""
        if not self._started:
            self.start()
        request = FrameRequest.coerce(frame, index=next(self._counter))
        if frame_id is not None:
            request = dataclasses.replace(request, frame_id=frame_id)
        assert self._probe is not None
        key = self._probe.shape_key(request.cloud)
        with self._lock:
            shard_name = self._ring.locate(key)
        return self.shards[shard_name].submit(
            request, block=block, timeout=timeout
        )

    # -- membership ------------------------------------------------------
    def remove_shard(self, shard_name: str, drain: bool = True) -> dict:
        """Retire one shard: re-home its keys, drain it, return its stats.

        The ring entry is dropped *before* the drain, so submissions
        arriving mid-drain already rebalance to the surviving shards while
        the retiring shard completes everything it had admitted.
        """
        with self._lock:
            if shard_name not in self.shards:
                raise KeyError(shard_name)
            if shard_name in self._removed:
                return dict(self._removed[shard_name])
            if shard_name in self._ring:
                self._ring.remove(shard_name)
        snapshot = self.shards[shard_name].shutdown(drain=drain)
        with self._lock:
            self._removed[shard_name] = snapshot
        return snapshot

    @property
    def active_shards(self) -> List[str]:
        with self._lock:
            return self._ring.names

    # -- observability ---------------------------------------------------
    def metrics(self) -> ServingMetrics:
        """Merged ServingMetrics across every shard (removed ones included)."""
        return ServingMetrics.merge(
            [shard.metrics for shard in self.shards.values()]
        )

    def shard_health(self) -> Dict[str, dict]:
        """Per-shard liveness and live stats snapshot."""
        health: Dict[str, dict] = {}
        with self._lock:
            removed = set(self._removed)
        for shard_name, shard in self.shards.items():
            health[shard_name] = {
                "running": shard.running,
                "removed": shard_name in removed,
                "stats": shard.stats(),
            }
        return health

    def stats(self) -> dict:
        """Merged snapshot plus a per-shard breakdown."""
        merged = self.metrics().snapshot()
        merged["shards"] = {
            shard_name: shard.stats()
            for shard_name, shard in self.shards.items()
        }
        return merged
