"""Process-sharded serving: shared-memory transport, process pool, router.

Three layers on top of the PR 5 serving stack, each usable alone:

* :mod:`~repro.serving.cluster.transport` -- ship ``FrameBatch`` tensors
  and response payloads across process boundaries without pickling array
  data (shared-memory segments + dtype/shape manifest, inline fallback);
* :mod:`~repro.serving.cluster.pool` -- the worker-pool contract behind
  :class:`~repro.serving.server.FrameServer`, with thread and
  fork-process implementations (warm child sessions, shape-key-affine
  routing, crash detection + respawn);
* :mod:`~repro.serving.cluster.router` -- N in-process ``FrameServer``
  shards behind a consistent-hash ring keyed on the warm-shape key.
"""

from repro.serving.cluster.pool import (
    ProcessWorkerPool,
    ThreadWorkerPool,
    WorkerCrashed,
    WorkerError,
    WorkerPool,
)
from repro.serving.cluster.router import HashRing, ShardRouter
from repro.serving.cluster.transport import (
    ArraySpec,
    FrameBatchHeader,
    SharedMemoryArena,
    TransportError,
    TransportMessage,
    decode_frame_batch,
    decode_payload,
    decode_requests,
    encode_frame_batch,
    encode_payload,
    encode_requests,
    shared_memory_available,
)

__all__ = [
    "ArraySpec",
    "FrameBatchHeader",
    "HashRing",
    "ProcessWorkerPool",
    "ShardRouter",
    "SharedMemoryArena",
    "ThreadWorkerPool",
    "TransportError",
    "TransportMessage",
    "WorkerCrashed",
    "WorkerError",
    "WorkerPool",
    "decode_frame_batch",
    "decode_payload",
    "decode_requests",
    "encode_frame_batch",
    "encode_payload",
    "encode_requests",
    "shared_memory_available",
]
