"""Shared-memory transport: ship tensors between processes without pickling.

The process pool moves two kinds of payloads between the parent and its
worker processes: request micro-batches (the stacked ``(B, N, 3)`` /
``(B, N, F)`` tensors of a :class:`~repro.core.framebatch.FrameBatch`) and
response payloads (:class:`~repro.session.FrameResponse` trees whose leaves
are numpy arrays: logits, sampled indices, gather rows, octree arrays).
Pickling those arrays through a ``multiprocessing.Queue`` would copy every
byte twice (serialize + deserialize); this module lifts the array *data*
out of the pickle stream instead:

* :func:`encode_payload` pickles the object tree with a custom pickler
  whose ``persistent_id`` intercepts every numpy array, leaving a
  placeholder in the **skeleton** and appending the raw bytes to a
  shared-memory segment.  The message that crosses the queue is tiny: the
  skeleton, a **manifest** of ``(dtype, shape, order, offset, nbytes)``
  specs, and the segment name.
* :func:`decode_payload` validates the manifest against the segment,
  rebuilds each array byte-exactly (dtype, shape, and C/F contiguity all
  preserved), and unpickles the skeleton with the arrays patched back in.
* :func:`encode_frame_batch` / :func:`decode_frame_batch` are the typed
  wrappers for a bare :class:`FrameBatch`: the message carries a
  :class:`FrameBatchHeader` and decoding **rejects** any manifest whose
  tensor shapes disagree with it (defence against torn or misrouted
  messages).
* :func:`encode_requests` / :func:`decode_requests` are the request wire
  format of the process pool: frames grouped by raw shape, each group
  shipped as one stacked FrameBatch tensor pair, with per-frame ids and
  timestamps riding in the skeleton.

When :mod:`multiprocessing.shared_memory` is unavailable (or the platform
cannot map segments), every encoder falls back to an **inline** buffer
carried inside the message itself -- the bytes then travel through the
queue pickle, slower but byte-for-byte equivalent (the manifest/skeleton
machinery is identical, only the buffer's home changes).

Segment lifetime follows a strict creator-unlinks discipline (see
:class:`SharedMemoryArena`): the creating process tracks and unlinks its
segments; receivers only attach, copy, and close.  The pool layers an
ack protocol on top so a segment is never unlinked before its receiver
has copied the bytes out.
"""

from __future__ import annotations

import dataclasses
import io
import itertools
import os
import pickle
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.framebatch import FrameBatch
from repro.geometry.pointcloud import PointCloud
from repro.session import FrameRequest

try:  # gate, don't crash: some platforms build python without shm
    from multiprocessing import shared_memory as _shared_memory_module
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _shared_memory_module = None

#: Byte alignment of every array in a segment (cache-line sized).
_ALIGNMENT = 64


class TransportError(RuntimeError):
    """A message failed validation or a segment could not be mapped."""


def shared_memory_available() -> bool:
    """Whether the shared-memory fast path can be used on this platform."""
    return _shared_memory_module is not None


def _attach(name: str):
    """Attach to an existing segment as a non-owner.

    CPython (gh-82300) registers a ``SharedMemory`` with the resource
    tracker even on attach, but the tracker cache is a *set* shared by the
    whole fork tree, so the attach registration collapses into the
    creator's and the creator's eventual ``unlink`` clears it -- no manual
    unregister needed (an extra one would double-remove and make the
    tracker process log KeyErrors).
    """
    if _shared_memory_module is None:
        raise TransportError(
            "multiprocessing.shared_memory is unavailable on this platform"
        )
    try:
        segment = _shared_memory_module.SharedMemory(name=name)
    except FileNotFoundError as exc:
        raise TransportError(f"shared-memory segment {name!r} is gone") from exc
    return segment


class SharedMemoryArena:
    """Tracks the shared-memory segments a process *owns*.

    The arena is the creator-side bookkeeping: :meth:`allocate` creates a
    named segment and remembers it; :meth:`release` closes **and unlinks**
    it; :meth:`release_all` is the shutdown/crash sweep.  Receivers never
    go through an arena -- they attach, copy, and close
    (:func:`decode_payload` does this internally).

    ``release`` also accepts names the arena never allocated: it then
    attempts an attach-and-unlink, which is the crash-cleanup path (the
    parent reclaiming segments a dead worker created under predictable
    names).
    """

    def __init__(self, prefix: str = "repro-shm"):
        self.prefix = prefix
        self._owned: Dict[str, Any] = {}
        self._counter = itertools.count()
        self._lock = threading.Lock()

    def allocate(self, nbytes: int, name: Optional[str] = None):
        """Create (and own) a segment of at least ``nbytes`` bytes."""
        if _shared_memory_module is None:
            raise TransportError(
                "multiprocessing.shared_memory is unavailable on this platform"
            )
        if name is None:
            name = f"{self.prefix}-{os.getpid()}-{next(self._counter)}"
        segment = _shared_memory_module.SharedMemory(
            name=name, create=True, size=max(1, int(nbytes))
        )
        with self._lock:
            self._owned[segment.name] = segment
        return segment

    def release(self, name: str) -> bool:
        """Close and unlink ``name``; True when a segment was reclaimed."""
        with self._lock:
            segment = self._owned.pop(name, None)
        if segment is None:
            # Crash cleanup of a foreign segment under a predictable name.
            if _shared_memory_module is None:
                return False
            try:
                segment = _shared_memory_module.SharedMemory(name=name)
            except FileNotFoundError:
                return False
            except Exception:
                return False
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # already unlinked elsewhere
            return False
        return True

    def release_all(self) -> int:
        """Reclaim every owned segment (shutdown sweep)."""
        with self._lock:
            names = list(self._owned)
        return sum(1 for name in names if self.release(name))

    @property
    def owned_names(self) -> List[str]:
        with self._lock:
            return list(self._owned)

    def __enter__(self) -> "SharedMemoryArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release_all()


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ArraySpec:
    """Manifest entry: where one array's bytes live and how to rebuild it."""

    index: int
    dtype: str
    shape: Tuple[int, ...]
    #: "C" or "F": the contiguity to restore on decode.
    order: str
    offset: int
    nbytes: int


@dataclasses.dataclass(frozen=True)
class FrameBatchHeader:
    """Declared shape of a FrameBatch message, validated against its manifest."""

    num_frames: int
    num_points: int
    num_feature_channels: int


@dataclasses.dataclass(frozen=True)
class TransportMessage:
    """One payload crossing a process boundary.

    ``segment`` names the shared-memory block holding the array bytes;
    ``inline`` carries them directly when shared memory is unavailable
    (exactly one of the two is set when the manifest is non-empty).
    """

    skeleton: bytes
    manifest: Tuple[ArraySpec, ...]
    segment: Optional[str] = None
    inline: Optional[bytes] = None
    total_bytes: int = 0
    header: Optional[FrameBatchHeader] = None

    @property
    def via_shared_memory(self) -> bool:
        return self.segment is not None


class _ArrayLiftingPickler(pickle.Pickler):
    """Pickler that swaps numpy arrays for manifest placeholders."""

    def __init__(self, file, arrays: List[np.ndarray]):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._arrays = arrays

    def persistent_id(self, obj: Any):
        # Exact ndarray only: subclasses and object-dtype arrays keep their
        # own (possibly custom) pickle semantics.
        if type(obj) is np.ndarray and not obj.dtype.hasobject:
            self._arrays.append(obj)
            return ("repro-ndarray", len(self._arrays) - 1)
        return None


class _ArrayRestoringUnpickler(pickle.Unpickler):
    """Unpickler that patches decoded arrays back into the skeleton."""

    def __init__(self, file, arrays: Sequence[np.ndarray]):
        super().__init__(file)
        self._arrays = arrays

    def persistent_load(self, pid: Any) -> np.ndarray:
        try:
            tag, index = pid
            if tag == "repro-ndarray":
                return self._arrays[index]
        except (TypeError, ValueError):
            pass
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def _contiguous_bytes(array: np.ndarray) -> Tuple[np.ndarray, str]:
    """``(C-contiguous byte source, order flag)`` for ``array``."""
    if array.flags.f_contiguous and not array.flags.c_contiguous:
        # An F-contiguous array's memory equals the C-order bytes of its
        # transpose; recording "F" lets decode restore the original layout.
        return np.ascontiguousarray(array.T), "F"
    return np.ascontiguousarray(array), "C"


def encode_payload(
    obj: Any,
    arena: Optional[SharedMemoryArena] = None,
    segment_name: Optional[str] = None,
    force_inline: bool = False,
) -> TransportMessage:
    """Encode ``obj`` with its array data lifted out of the pickle stream.

    Uses a shared-memory segment (allocated from ``arena``, or a throwaway
    arena when none is given) unless shared memory is unavailable or
    ``force_inline`` is set, in which case the bytes ride inline.
    """
    buffer = io.BytesIO()
    arrays: List[np.ndarray] = []
    _ArrayLiftingPickler(buffer, arrays).dump(obj)

    sources: List[np.ndarray] = []
    manifest: List[ArraySpec] = []
    offset = 0
    for index, array in enumerate(arrays):
        source, order = _contiguous_bytes(array)
        offset = (offset + _ALIGNMENT - 1) & ~(_ALIGNMENT - 1)
        manifest.append(
            ArraySpec(
                index=index,
                dtype=array.dtype.str,
                shape=tuple(array.shape),
                order=order,
                offset=offset,
                nbytes=source.nbytes,
            )
        )
        sources.append(source)
        offset += source.nbytes
    total = offset

    use_shm = (
        shared_memory_available() and not force_inline and total > 0
    )
    if use_shm:
        own_arena = arena if arena is not None else SharedMemoryArena()
        segment = own_arena.allocate(total, name=segment_name)
        try:
            view = segment.buf
            for spec, source in zip(manifest, sources):
                view[spec.offset : spec.offset + spec.nbytes] = source.tobytes()
            return TransportMessage(
                skeleton=buffer.getvalue(),
                manifest=tuple(manifest),
                segment=segment.name,
                total_bytes=total,
            )
        except Exception:
            own_arena.release(segment.name)
            raise
    inline = bytearray(total)
    for spec, source in zip(manifest, sources):
        inline[spec.offset : spec.offset + spec.nbytes] = source.tobytes()
    return TransportMessage(
        skeleton=buffer.getvalue(),
        manifest=tuple(manifest),
        inline=bytes(inline),
        total_bytes=total,
    )


def _read_array(buffer, spec: ArraySpec) -> np.ndarray:
    """Rebuild one array (byte-exact, owning its memory) from ``buffer``."""
    dtype = np.dtype(spec.dtype)
    count = int(np.prod(spec.shape, dtype=np.int64)) if spec.shape else 1
    expected = count * dtype.itemsize
    if spec.nbytes != expected:
        raise TransportError(
            f"manifest entry {spec.index}: {spec.nbytes} bytes recorded but "
            f"shape {spec.shape} x {dtype} needs {expected}"
        )
    end = spec.offset + spec.nbytes
    if spec.offset < 0 or end > len(buffer):
        raise TransportError(
            f"manifest entry {spec.index}: [{spec.offset}, {end}) outside "
            f"the {len(buffer)}-byte buffer"
        )
    flat = np.frombuffer(buffer, dtype=dtype, count=count, offset=spec.offset)
    if spec.order == "F":
        return flat.reshape(tuple(reversed(spec.shape))).T.copy(order="F")
    return flat.reshape(spec.shape).copy()


def decode_payload(message: TransportMessage) -> Any:
    """Decode a message; arrays come back byte-exact and independently owned.

    Attaches to the segment only for the duration of the copy; the segment
    itself is left for its creator to unlink (see the ack protocol in
    :mod:`repro.serving.cluster.pool`).
    """
    if message.segment is not None:
        segment = _attach(message.segment)
        try:
            arrays = [_read_array(segment.buf, s) for s in message.manifest]
        finally:
            segment.close()
    else:
        inline = message.inline if message.inline is not None else b""
        arrays = [_read_array(inline, s) for s in message.manifest]
    return _ArrayRestoringUnpickler(
        io.BytesIO(message.skeleton), arrays
    ).load()


# ----------------------------------------------------------------------
# FrameBatch wire format
# ----------------------------------------------------------------------
def encode_frame_batch(
    batch: FrameBatch,
    arena: Optional[SharedMemoryArena] = None,
    segment_name: Optional[str] = None,
    force_inline: bool = False,
) -> TransportMessage:
    """Ship one FrameBatch: stacked tensors in the segment, ids in the skeleton."""
    payload = {
        "points": batch.points,
        "features": batch.features,
        "frame_ids": [cloud.frame_id for cloud in batch.clouds],
        "timestamps": [cloud.timestamp for cloud in batch.clouds],
    }
    message = encode_payload(
        payload, arena=arena, segment_name=segment_name, force_inline=force_inline
    )
    header = FrameBatchHeader(
        num_frames=batch.num_frames,
        num_points=batch.num_points,
        num_feature_channels=batch.num_feature_channels,
    )
    return dataclasses.replace(message, header=header)


def validate_frame_batch_manifest(message: TransportMessage) -> None:
    """Reject a FrameBatch message whose manifest disagrees with its header.

    Runs *before* any segment bytes are touched: a torn, tampered, or
    misrouted message fails here with a :class:`TransportError` instead of
    materialising garbage tensors.
    """
    header = message.header
    if header is None:
        raise TransportError("message carries no FrameBatchHeader")
    expected_arrays = 1 + (1 if header.num_feature_channels else 0)
    if len(message.manifest) != expected_arrays:
        raise TransportError(
            f"FrameBatch manifest has {len(message.manifest)} tensors, "
            f"header declares {expected_arrays}"
        )
    points_shape = (header.num_frames, header.num_points, 3)
    if tuple(message.manifest[0].shape) != points_shape:
        raise TransportError(
            f"points tensor shape {tuple(message.manifest[0].shape)} does "
            f"not match header {points_shape}"
        )
    if header.num_feature_channels:
        features_shape = (
            header.num_frames,
            header.num_points,
            header.num_feature_channels,
        )
        if tuple(message.manifest[1].shape) != features_shape:
            raise TransportError(
                f"features tensor shape {tuple(message.manifest[1].shape)} "
                f"does not match header {features_shape}"
            )


def decode_frame_batch(message: TransportMessage) -> FrameBatch:
    """Validate and rebuild a FrameBatch; member clouds view the stacks."""
    validate_frame_batch_manifest(message)
    payload = decode_payload(message)
    points = payload["points"]
    features = payload["features"]
    clouds = [
        PointCloud(
            points=points[b],
            features=None if features is None else features[b],
            frame_id=payload["frame_ids"][b],
            timestamp=payload["timestamps"][b],
        )
        for b in range(points.shape[0])
    ]
    return FrameBatch(clouds=clouds, points=points, features=features)


# ----------------------------------------------------------------------
# Micro-batch request wire format (what the pool actually dispatches)
# ----------------------------------------------------------------------
def encode_requests(
    requests: Sequence[FrameRequest],
    arena: Optional[SharedMemoryArena] = None,
    segment_name: Optional[str] = None,
    force_inline: bool = False,
) -> TransportMessage:
    """Encode a micro-batch of requests as stacked per-raw-shape tensors.

    Frames of one micro-batch share a *warm-shape* key but may differ in
    raw point count, so they are grouped by raw shape first (the same
    grouping :meth:`Session.run_batch` applies) and each group travels as
    one stacked ``(B, N, 3)``/``(B, N, F)`` tensor pair -- two manifest
    entries per group instead of two per frame.
    """
    requests = list(requests)
    groups = []
    grouped: Dict[Tuple[int, int], List[int]] = {}
    for i, request in enumerate(requests):
        cloud = request.cloud
        key = (cloud.num_points, cloud.num_feature_channels)
        grouped.setdefault(key, []).append(i)
    for indices in grouped.values():
        batch = FrameBatch.from_clouds([requests[i].cloud for i in indices])
        groups.append(
            {
                "indices": list(indices),
                "points": batch.points,
                "features": batch.features,
                "frame_ids": [requests[i].frame_id for i in indices],
                "timestamps": [requests[i].timestamp for i in indices],
            }
        )
    payload = {"num_requests": len(requests), "groups": groups}
    return encode_payload(
        payload, arena=arena, segment_name=segment_name, force_inline=force_inline
    )


def decode_requests(message: TransportMessage) -> List[FrameRequest]:
    """Rebuild the request list; clouds are views of the decoded stacks."""
    payload = decode_payload(message)
    requests: List[Optional[FrameRequest]] = [None] * payload["num_requests"]
    for group in payload["groups"]:
        points = group["points"]
        features = group["features"]
        for slot, i in enumerate(group["indices"]):
            if requests[i] is not None:
                raise TransportError(f"request slot {i} assigned twice")
            cloud = PointCloud(
                points=points[slot],
                features=None if features is None else features[slot],
            )
            requests[i] = FrameRequest(
                cloud=cloud,
                frame_id=group["frame_ids"][slot],
                timestamp=group["timestamps"][slot],
            )
    missing = [i for i, request in enumerate(requests) if request is None]
    if missing:
        raise TransportError(f"request slots {missing} missing from message")
    return requests  # type: ignore[return-value]
