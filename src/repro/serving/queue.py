"""Bounded admission queue: the front door of the serving subsystem.

Requests enter serving through :meth:`AdmissionQueue.submit`, which stamps
the enqueue time, allocates the submission sequence number, and pairs the
request with the :class:`concurrent.futures.Future` handed back to the
caller.  The queue is a bounded FIFO: when it is full, ``submit`` either
raises :class:`QueueFull` immediately (the default -- open-loop callers
count the rejection and move on) or blocks until the scheduler drains a
slot (``block=True``, closed-loop backpressure).

The scheduler thread is the single consumer; it pulls entries with
:meth:`pop` and regroups them into shape-keyed micro-batches (see
:mod:`repro.serving.scheduler`).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.serving.metrics import Clock
from repro.session import FrameRequest


class QueueFull(RuntimeError):
    """The admission queue is at capacity (backpressure)."""


class QueueClosed(RuntimeError):
    """The admission queue no longer accepts requests (shutdown)."""


@dataclass
class QueuedRequest:
    """One admitted request travelling the queue -> scheduler -> worker path."""

    request: FrameRequest
    future: "Future"
    #: Admission order (0-based), unique per queue.
    sequence: int
    #: Clock reading at admission.
    enqueued_at: float
    #: Filled in by the worker when its micro-batch starts executing.
    dispatched_at: Optional[float] = field(default=None, compare=False)


class AdmissionQueue:
    """Thread-safe bounded FIFO of :class:`QueuedRequest` entries."""

    def __init__(self, capacity: int = 256, clock: Clock = time.monotonic):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.clock = clock
        self._entries: Deque[QueuedRequest] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self._sequence = 0
        self.rejected = 0

    # -- producer side --------------------------------------------------
    def submit(
        self,
        request: FrameRequest,
        block: bool = False,
        timeout: Optional[float] = None,
    ) -> QueuedRequest:
        """Admit ``request``; returns its queue entry (future included).

        Raises :class:`QueueFull` when at capacity (after ``timeout`` in
        blocking mode) and :class:`QueueClosed` after :meth:`close`.
        """
        with self._lock:
            if self._closed:
                raise QueueClosed("admission queue is closed")
            if len(self._entries) >= self.capacity:
                if not block:
                    self.rejected += 1
                    raise QueueFull(
                        f"admission queue at capacity ({self.capacity})"
                    )
                deadline = None if timeout is None else self.clock() + timeout
                while len(self._entries) >= self.capacity and not self._closed:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - self.clock()
                        if remaining <= 0:
                            break
                    self._not_full.wait(remaining)
                if self._closed:
                    raise QueueClosed("admission queue is closed")
                if len(self._entries) >= self.capacity:
                    self.rejected += 1
                    raise QueueFull(
                        f"admission queue at capacity ({self.capacity})"
                    )
            entry = QueuedRequest(
                request=request,
                future=Future(),
                sequence=self._sequence,
                enqueued_at=self.clock(),
            )
            self._sequence += 1
            self._entries.append(entry)
            self._not_empty.notify()
            return entry

    def close(self) -> None:
        """Stop admitting; already-queued entries remain poppable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    # -- consumer side --------------------------------------------------
    def pop(self, timeout: Optional[float] = None) -> Optional[QueuedRequest]:
        """Pop the oldest entry, waiting up to ``timeout`` seconds.

        Returns ``None`` on timeout or when the queue is closed and empty
        (check :meth:`is_drained` to tell the two apart).
        """
        with self._lock:
            if not self._entries:
                if self._closed:
                    return None
                self._not_empty.wait(timeout)
            if not self._entries:
                return None
            entry = self._entries.popleft()
            self._not_full.notify()
            return entry

    def is_drained(self) -> bool:
        """Closed and empty: no entry will ever come out again."""
        with self._lock:
            return self._closed and not self._entries

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
