"""Bounded admission queue: the front door of the serving subsystem.

Requests enter serving through :meth:`AdmissionQueue.submit`, which stamps
the enqueue time, allocates the submission sequence number, and pairs the
request with the :class:`concurrent.futures.Future` handed back to the
caller.  The queue is a bounded FIFO: when it is full, ``submit`` either
raises :class:`QueueFull` immediately (the default -- open-loop callers
count the rejection and move on) or blocks until the scheduler drains a
slot (``block=True``, closed-loop backpressure).  In blocking mode the
``timeout`` budget is measured on the queue's *injected* clock -- the same
clock that stamps ``enqueued_at`` -- so tests driving a
:class:`~repro.serving.metrics.ManualClock` get exact timeout semantics.

Requests may carry a TTL: ``submit(..., ttl=...)`` stamps an absolute
``deadline`` on the entry.  A full queue sheds its expired entries (oldest
first -- the FIFO order) before giving up with :class:`QueueFull`; each
shed entry is handed to the ``on_shed`` callback *outside* the queue lock
so the owner can resolve its future with ``DeadlineExceeded`` -- an
admitted request is never silently dropped.

The scheduler thread is the single consumer; it pulls entries with
:meth:`pop` and regroups them into shape-keyed micro-batches (see
:mod:`repro.serving.scheduler`).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

from repro.serving.metrics import Clock
from repro.session import FrameRequest, SubmitOptions, _UNSET


#: Blocking submitters wake at least this often (real seconds) to re-check
#: for occupants whose deadlines have passed: an expiry frees a slot
#: without anyone notifying the condition variable.
_BLOCKED_POLL_SECONDS = 0.05


class QueueFull(RuntimeError):
    """The admission queue is at capacity (backpressure)."""


class QueueClosed(RuntimeError):
    """The admission queue no longer accepts requests (shutdown)."""


@dataclass
class QueuedRequest:
    """One admitted request travelling the queue -> scheduler -> worker path."""

    request: FrameRequest
    future: "Future"
    #: Admission order (0-based), unique per queue.
    sequence: int
    #: Clock reading at admission.
    enqueued_at: float
    #: Filled in by the worker when its micro-batch starts executing.
    dispatched_at: Optional[float] = field(default=None, compare=False)
    #: Absolute clock deadline (``enqueued_at`` clock + ttl); ``None`` means
    #: the request waits indefinitely.  Checked before dispatch, never after.
    deadline: Optional[float] = field(default=None, compare=False)
    #: How many times a worker pool has dispatched this entry (crash retry).
    attempts: int = field(default=0, compare=False)
    #: Serving-policy rank (higher wins scheduler ordering and survives
    #: admission shedding); 0 for requests without a policy.
    priority: int = field(default=0, compare=False)
    #: Serving-policy class this entry rides (per-class metrics key).
    class_name: str = field(default="default", compare=False)

    def expired(self, now: float) -> bool:
        return self.deadline is not None and self.deadline <= now


class AdmissionQueue:
    """Thread-safe bounded FIFO of :class:`QueuedRequest` entries."""

    def __init__(
        self,
        capacity: int = 256,
        clock: Clock = time.monotonic,
        on_shed: Optional[Callable[[QueuedRequest], None]] = None,
    ):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.clock = clock
        #: Called (outside the queue lock) with each expired entry shed to
        #: make room; the owner resolves its future with DeadlineExceeded.
        self.on_shed = on_shed
        self._entries: Deque[QueuedRequest] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self._sequence = 0
        self.rejected = 0

    # -- producer side --------------------------------------------------
    def submit(
        self,
        request: FrameRequest,
        options: Optional[SubmitOptions] = None,
        *,
        block: object = _UNSET,
        timeout: object = _UNSET,
        ttl: object = _UNSET,
        priority: int = 0,
        class_name: str = "default",
    ) -> QueuedRequest:
        """Admit ``request``; returns its queue entry (future included).

        Per-request knobs travel as one :class:`~repro.session.SubmitOptions`
        (the legacy ``block``/``timeout``/``ttl`` kwargs still work behind a
        deprecation shim).  ``options.ttl`` (seconds, > 0) stamps an
        absolute deadline on the entry; expired entries are shed before
        dispatch rather than served.  ``priority``/``class_name`` are the
        *resolved* policy values stamped by the owning server (the raw
        ``options.priority``/``options.class_name`` may be ``None``).

        Raises :class:`QueueFull` when at capacity (after ``options.timeout``
        on the injected clock in blocking mode; ``timeout=0`` never waits)
        and :class:`QueueClosed` after :meth:`close`.  A full queue first
        sheds its own expired entries to make room.
        """
        options = SubmitOptions.coerce(
            options, block=block, timeout=timeout, ttl=ttl,
            caller="AdmissionQueue.submit",
        )
        ttl_seconds = options.ttl
        shed: List[QueuedRequest] = []
        try:
            with self._lock:
                if self._closed:
                    raise QueueClosed("admission queue is closed")
                if len(self._entries) >= self.capacity:
                    shed.extend(self._shed_expired_locked(self.clock()))
                if len(self._entries) >= self.capacity:
                    if not options.block:
                        self.rejected += 1
                        raise QueueFull(
                            f"admission queue at capacity ({self.capacity})"
                        )
                    deadline = (
                        None
                        if options.timeout is None
                        else self.clock() + options.timeout
                    )
                    while len(self._entries) >= self.capacity and not self._closed:
                        remaining = None
                        if deadline is not None:
                            remaining = deadline - self.clock()
                            if remaining <= 0:
                                break
                        self._not_full.wait(
                            _BLOCKED_POLL_SECONDS
                            if remaining is None
                            else min(remaining, _BLOCKED_POLL_SECONDS)
                        )
                        if len(self._entries) >= self.capacity:
                            shed.extend(self._shed_expired_locked(self.clock()))
                    if self._closed:
                        raise QueueClosed("admission queue is closed")
                    if len(self._entries) >= self.capacity:
                        self.rejected += 1
                        raise QueueFull(
                            f"admission queue at capacity ({self.capacity})"
                        )
                now = self.clock()
                entry = QueuedRequest(
                    request=request,
                    future=Future(),
                    sequence=self._sequence,
                    enqueued_at=now,
                    deadline=None if ttl_seconds is None else now + ttl_seconds,
                    priority=int(priority),
                    class_name=class_name,
                )
                self._sequence += 1
                self._entries.append(entry)
                self._not_empty.notify()
                return entry
        finally:
            if shed and self.on_shed is not None:
                for victim in shed:
                    self.on_shed(victim)

    def steal_lowest(self, below_priority: int) -> Optional[QueuedRequest]:
        """Remove and return the best shed victim under ``below_priority``.

        SLO-aware admission support: among queued entries with a strictly
        lower priority, the victim is the lowest-priority one, youngest
        first (the least sunk queue wait).  The caller resolves the
        victim's future with a typed ``LoadShed``.  ``None`` when every
        queued entry ranks at least ``below_priority``.
        """
        with self._lock:
            victim: Optional[QueuedRequest] = None
            for entry in self._entries:
                if entry.priority >= below_priority:
                    continue
                if (
                    victim is None
                    or entry.priority < victim.priority
                    or (
                        entry.priority == victim.priority
                        and entry.sequence > victim.sequence
                    )
                ):
                    victim = entry
            if victim is not None:
                # Rebuild by identity: dataclass __eq__ would compare the
                # numpy payloads element-wise.
                stolen = victim
                self._entries = deque(
                    e for e in self._entries if e is not stolen
                )
                self._not_full.notify()
            return victim

    def _shed_expired_locked(self, now: float) -> List[QueuedRequest]:
        """Drop expired entries (oldest first); caller resolves their futures."""
        if not self._entries:
            return []
        shed = [entry for entry in self._entries if entry.expired(now)]
        if shed:
            self._entries = deque(
                entry for entry in self._entries if not entry.expired(now)
            )
            self._not_full.notify_all()
        return shed

    def close(self) -> None:
        """Stop admitting; already-queued entries remain poppable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    # -- consumer side --------------------------------------------------
    def pop(self, timeout: Optional[float] = None) -> Optional[QueuedRequest]:
        """Pop the oldest entry, waiting up to ``timeout`` seconds.

        Returns ``None`` on timeout or when the queue is closed and empty
        (check :meth:`is_drained` to tell the two apart).
        """
        with self._lock:
            if not self._entries:
                if self._closed:
                    return None
                self._not_empty.wait(timeout)
            if not self._entries:
                return None
            entry = self._entries.popleft()
            self._not_full.notify()
            return entry

    def is_drained(self) -> bool:
        """Closed and empty: no entry will ever come out again."""
        with self._lock:
            return self._closed and not self._entries

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
