"""Resilience policies for the serving stack: typed errors, retry, breakers.

The serving pipeline recomputes rather than replays: responses are
bit-identical functions of the request (serving sessions run cache-less and
seed per-frame RNG from the frame id), so any failed attempt is idempotent
to redo.  That one property makes the policies in this module safe:

* :class:`RetryPolicy` -- capped exponential backoff with *seeded* jitter
  for re-enqueueing the surviving requests of a crashed worker's in-flight
  batches.  The jitter stream is a deterministic function of the seed, so a
  chaos test replays the exact same schedule every run.
* :class:`CircuitBreaker` -- the classic closed -> open -> half-open state
  machine guarding one shard.  Time comes from an injectable clock so tests
  can step through the open window without sleeping.
* Typed terminal errors -- an admitted request never disappears: its future
  resolves with a response, :class:`DeadlineExceeded` (shed before
  dispatch), or :class:`RetriesExhausted` (crash recovery gave up).

Everything here is policy, not mechanism: the queue/scheduler/pool/router
call into these objects but own the threading and the futures themselves.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

import numpy as np

from repro.serving.metrics import Clock


class DeadlineExceeded(RuntimeError):
    """The request's deadline passed before a worker picked it up."""


class RetriesExhausted(RuntimeError):
    """Crash recovery re-dispatched the request too many times and gave up."""


class NoHealthyShard(RuntimeError):
    """Every shard on the ring is stopped or breaker-open for this key."""


class RetryPolicy:
    """Capped exponential backoff with seeded jitter.

    ``max_attempts`` counts *dispatches*: 1 means fail on the first crash
    (the pre-retry behaviour), 3 means the original dispatch plus up to two
    re-dispatches.  Delays double from ``base_delay_seconds`` up to
    ``max_delay_seconds``, each stretched by a jitter factor drawn from a
    seeded RNG -- deterministic given the seed and the call order.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay_seconds: float = 0.05,
        max_delay_seconds: float = 1.0,
        jitter: float = 0.25,
        seed: int = 0,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay_seconds < 0:
            raise ValueError(
                f"base_delay_seconds must be >= 0, got {base_delay_seconds}"
            )
        if max_delay_seconds < base_delay_seconds:
            raise ValueError(
                "max_delay_seconds must be >= base_delay_seconds "
                f"({max_delay_seconds} < {base_delay_seconds})"
            )
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = int(max_attempts)
        self.base_delay_seconds = float(base_delay_seconds)
        self.max_delay_seconds = float(max_delay_seconds)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()

    def exhausted(self, attempts: int) -> bool:
        """Whether a request dispatched ``attempts`` times is out of tries."""
        return attempts >= self.max_attempts

    def delay(self, attempts: int) -> float:
        """Backoff before dispatch number ``attempts + 1`` (attempts >= 1)."""
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        base = min(
            self.max_delay_seconds,
            self.base_delay_seconds * (2.0 ** (attempts - 1)),
        )
        if self.jitter == 0.0:
            return base
        with self._lock:
            stretch = 1.0 + self.jitter * float(self._rng.random())
        return base * stretch

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base={self.base_delay_seconds}, max={self.max_delay_seconds}, "
            f"jitter={self.jitter}, seed={self.seed})"
        )


#: :class:`CircuitBreaker` states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Closed -> open -> half-open breaker for one downstream shard.

    * **closed**: traffic flows; ``failure_threshold`` *consecutive*
      failures trip the breaker open.
    * **open**: :meth:`allow` refuses everything until ``reset_seconds``
      have elapsed on the injected clock, then one probe is let through
      (half-open).
    * **half-open**: exactly one in-flight probe; success closes the
      breaker, failure re-opens it (and restarts the window).  A probe
      that ends without a verdict (e.g. its request was shed on deadline)
      releases the probe slot without changing state.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_seconds: float = 5.0,
        clock: Clock = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_seconds < 0:
            raise ValueError(f"reset_seconds must be >= 0, got {reset_seconds}")
        self.failure_threshold = int(failure_threshold)
        self.reset_seconds = float(reset_seconds)
        self.clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def allow(self) -> bool:
        """Whether one more request may be sent through this breaker."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        """A request completed: close the breaker, reset failure streak."""
        with self._lock:
            self._state = BREAKER_CLOSED
            self._consecutive_failures = 0
            self._opened_at = None
            self._probe_in_flight = False

    def record_failure(self) -> bool:
        """A request failed; returns ``True`` when this trips the breaker."""
        with self._lock:
            self._maybe_half_open_locked()
            self._consecutive_failures += 1
            if self._state == BREAKER_HALF_OPEN:
                # The probe failed: straight back to open.
                self._open_locked()
                return True
            if (
                self._state == BREAKER_CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._open_locked()
                return True
            return False

    def record_probe_release(self) -> None:
        """A half-open probe ended without a verdict; free the probe slot."""
        with self._lock:
            self._probe_in_flight = False

    def _open_locked(self) -> None:
        self._state = BREAKER_OPEN
        self._opened_at = self.clock()
        self._probe_in_flight = False
        self.trips += 1

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == BREAKER_OPEN
            and self._opened_at is not None
            and self.clock() - self._opened_at >= self.reset_seconds
        ):
            self._state = BREAKER_HALF_OPEN
            self._probe_in_flight = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self._consecutive_failures}, trips={self.trips})"
        )
