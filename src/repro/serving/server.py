"""Warm-session worker pool: admission queue -> scheduler -> N workers.

:class:`FrameServer` owns the full asynchronous serving path:

* callers :meth:`~FrameServer.submit` frames and get
  :class:`concurrent.futures.Future` objects back;
* a scheduler thread moves admitted requests into the
  :class:`~repro.serving.scheduler.MicroBatchScheduler` and dispatches the
  micro-batches it forms;
* a :class:`~repro.serving.cluster.pool.WorkerPool` executes the batches
  on warm :class:`~repro.session.Session` instances and resolves the
  per-request futures in admission order.  ``execution="thread"`` (the
  default) runs ``num_workers`` worker threads, each owning one warm
  session built by ``session_factory``; ``execution="process"`` runs the
  same contract across fork-spawned worker processes with shared-memory
  batch transport (:class:`~repro.serving.cluster.pool.ProcessWorkerPool`)
  -- real multi-core overlap instead of GIL time-slicing.

Determinism contract: every per-frame computation in the pipeline seeds its
RNG per call (samplers, gatherers, network layers), so a frame's response
payload -- logits, sampled indices, gather rows, counters, modelled
latencies -- depends only on the frame and the session configuration, never
on which worker served it, which process that worker was, or which
companions shared its micro-batch.  :func:`response_signature` captures
exactly that order-invariant payload; the soak gate and the serving
benchmarks compare it against a sequential :meth:`Session.run_batch` run.
What *does* depend on scheduling is the warm/cached flags and any
per-worker response cache, which is why signatures exclude them and serving
sessions are normally built with ``response_cache_size=0``.

Shutdown is graceful by default: :meth:`shutdown` closes the admission
queue, the scheduler flushes its pending groups (trigger ``"drain"``), the
pool finishes every dispatched batch, and only then do the workers exit --
no admitted request is dropped.  ``drain=False`` cancels instead.
Shutdown is idempotent and exception-safe: any number of concurrent or
repeated calls (double shutdown, ``__exit__`` racing an explicit call,
shutdown after a worker crash) all converge on one drain and return the
same final snapshot.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.serving.cluster.pool import (
    ProcessWorkerPool,
    ThreadWorkerPool,
    WorkerPool,
)
from repro.serving.faults import FaultPlan
from repro.serving.metrics import Clock, ServingMetrics
from repro.serving.policy import (
    LoadShed,
    RateLimitExceeded,
    ServingPolicy,
    TokenBucket,
)
from repro.serving.queue import (
    AdmissionQueue,
    QueueClosed,
    QueuedRequest,
    QueueFull,
)
from repro.serving.resilience import DeadlineExceeded, RetryPolicy
from repro.serving.scheduler import MicroBatchScheduler
from repro.session import (
    FrameLike,
    FrameRequest,
    FrameResponse,
    Session,
    SubmitOptions,
    _UNSET,
)

#: How long the scheduler sleeps waiting for work when nothing is pending.
_IDLE_POLL_SECONDS = 0.05

#: Recognised values of ``FrameServer(execution=...)``.
EXECUTION_MODES = ("thread", "process")


def response_signature(response: FrameResponse) -> Tuple[Any, ...]:
    """The order-invariant payload of a response, for bit-identity checks.

    Covers logits, sampled indices, per-SA-layer gather rows, the data
    structuring counters, and the modelled latency breakdown.  Excludes the
    warm/cached flags, which legitimately depend on which worker served the
    frame and what it served before.
    """
    forward = response.result.inference.forward
    return (
        response.result.frame_id,
        forward.logits,
        response.result.preprocessing.sampling.indices,
        tuple(
            trace.gather.neighbor_indices
            for trace in forward.sa_traces
            if trace.gather is not None
        ),
        dataclasses.asdict(response.result.inference.workload.data_structuring),
        tuple(response.result.breakdown.as_dict().items()),
    )


def signatures_equal(a: Any, b: Any) -> bool:
    """Deep equality over signature tuples (arrays compared elementwise)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    if isinstance(a, (tuple, list)):
        return (
            isinstance(b, (tuple, list))
            and len(a) == len(b)
            and all(signatures_equal(x, y) for x, y in zip(a, b))
        )
    if isinstance(a, dict):
        return (
            isinstance(b, dict)
            and a.keys() == b.keys()
            and all(signatures_equal(a[k], b[k]) for k in a)
        )
    return bool(a == b)


class FrameServer:
    """Asynchronous point-cloud serving over a pool of warm sessions.

    Parameters
    ----------
    session_factory:
        Zero-argument callable building one :class:`Session` per worker.
        Factories must return *distinct* sessions for distinct workers
        (sessions are not thread-safe); for deterministic cross-worker
        results, build them with identical configs and
        ``response_cache_size=0``.
    num_workers:
        Worker threads or processes (one warm session each).
    execution:
        ``"thread"`` (default) or ``"process"``.  Process workers need the
        ``fork`` start method; shared memory is used for batch transport
        when available, with an inline fallback otherwise.
    max_batch_size / max_wait_seconds / batch_rows_budget:
        Micro-batch triggers (see
        :class:`~repro.serving.scheduler.MicroBatchScheduler`).  The rows
        budget defaults to the sessions' own ``batch_rows_budget``.
    queue_capacity:
        Admission queue bound (backpressure above it).  A full queue sheds
        its expired entries (TTL) before rejecting.
    clock:
        Injectable monotonic clock shared by every serving component.
    faults:
        Optional seeded :class:`~repro.serving.faults.FaultPlan` injected
        into the worker pool (chaos testing).  Process pools honour kill /
        slow / poison faults; thread pools honour slow only.
    retry_policy:
        Crash-retry policy for process pools
        (:class:`~repro.serving.resilience.RetryPolicy`; default 3
        attempts with capped seeded-jitter backoff).  Pass
        ``RetryPolicy(max_attempts=1)`` to fail fast like PR 6.
    policy:
        Optional :class:`~repro.serving.policy.ServingPolicy`: priority
        classes, per-shape-key token-bucket rate limits, adaptive
        max-wait, and SLO-aware admission shedding.  Without one the
        server behaves exactly as before (FIFO per shape, ``QueueFull``
        backpressure).
    """

    def __init__(
        self,
        session_factory: Callable[[], Session],
        num_workers: int = 1,
        max_batch_size: int = 8,
        max_wait_seconds: float = 0.005,
        queue_capacity: int = 256,
        batch_rows_budget: Optional[int] = None,
        clock: Clock = time.monotonic,
        name: str = "serving",
        execution: str = "thread",
        faults: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        policy: Optional[ServingPolicy] = None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if execution not in EXECUTION_MODES:
            raise ValueError(
                f"execution must be one of {EXECUTION_MODES}, got {execution!r}"
            )
        self.session_factory = session_factory
        self.num_workers = int(num_workers)
        self.execution = execution
        self.name = name
        self.clock = clock
        self.faults = faults
        self.retry_policy = retry_policy
        self.policy = policy
        #: Lazily-built per-shape-key token buckets (policy rate limiting).
        self._buckets: Dict[Tuple[str, int, int], TokenBucket] = {}
        self._buckets_lock = threading.Lock()
        self.metrics = ServingMetrics()
        self.admission = AdmissionQueue(
            capacity=queue_capacity, clock=clock, on_shed=self._shed_entry
        )
        self.pool: Optional[WorkerPool] = None
        self._max_batch_size = max_batch_size
        self._max_wait_seconds = max_wait_seconds
        self._batch_rows_budget = batch_rows_budget
        self.scheduler: Optional[MicroBatchScheduler] = None
        self._scheduler_thread: Optional[threading.Thread] = None
        #: Numbers raw clouds submitted without a frame_id so each gets a
        #: distinct id *within this server*.  The ids are not coordinated
        #: with the synchronous path's frames_processed numbering (and
        #: restart with every new server); pass FrameRequests with explicit
        #: frame_ids when ids must be stable across paths.
        self._submit_counter = itertools.count()
        self._started = False
        self._stopping = False
        self._stopped = False
        self._discard = False
        self._final_snapshot: Optional[dict] = None
        self._stop_event = threading.Event()
        self._lifecycle_lock = threading.Lock()

    # -- life cycle -----------------------------------------------------
    def start(self) -> "FrameServer":
        with self._lifecycle_lock:
            if self._started:
                return self
            if self._stopped or self._stopping:
                raise RuntimeError("FrameServer cannot be restarted")
            if self.execution == "process":
                pool: WorkerPool = ProcessWorkerPool(
                    session_factory=self.session_factory,
                    num_workers=self.num_workers,
                    metrics=self.metrics,
                    clock=self.clock,
                    name=self.name,
                    faults=self.faults,
                    retry_policy=self.retry_policy,
                )
            else:
                pool = ThreadWorkerPool(
                    session_factory=self.session_factory,
                    num_workers=self.num_workers,
                    metrics=self.metrics,
                    clock=self.clock,
                    name=self.name,
                    faults=self.faults,
                    retry_policy=self.retry_policy,
                )
            pool.start()
            self.pool = pool
            if self._batch_rows_budget is None:
                self._batch_rows_budget = pool.default_batch_rows_budget()
            self.scheduler = MicroBatchScheduler(
                shape_key=lambda request: pool.shape_key(request.cloud),
                max_batch_size=self._max_batch_size,
                max_wait_seconds=self._max_wait_seconds,
                batch_rows_budget=self._batch_rows_budget,
                clock=self.clock,
                policy=self.policy,
            )
            self._scheduler_thread = threading.Thread(
                target=self._scheduler_loop,
                name=f"{self.name}-scheduler",
                daemon=True,
            )
            self._scheduler_thread.start()
            self._started = True
            return self

    def __enter__(self) -> "FrameServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    @property
    def running(self) -> bool:
        """Started and not (yet) shutting down."""
        with self._lifecycle_lock:
            return self._started and not self._stopping and not self._stopped

    @property
    def sessions(self) -> List[Session]:
        """The warm sessions of a *thread* pool (empty for process pools,
        whose sessions live in the worker processes)."""
        if isinstance(self.pool, ThreadWorkerPool):
            return self.pool.sessions
        return []

    def shutdown(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> dict:
        """Stop serving and return the final metrics snapshot.

        ``drain=True`` (the default) completes every admitted request first;
        ``drain=False`` cancels whatever has not been dispatched yet.
        Idempotent: every call (including concurrent ones) returns the same
        final snapshot; only the first performs the drain.
        """
        with self._lifecycle_lock:
            if self._stopped:
                return (
                    self._final_snapshot
                    if self._final_snapshot is not None
                    else self.metrics.snapshot()
                )
            if not self._started and not self._stopping:
                # Never ran: close the front door and freeze the counters.
                self._stopped = True
                self.admission.close()
                self._final_snapshot = self.metrics.snapshot()
                self._stop_event.set()
                return self._final_snapshot
            if self._stopping:
                follower = True
            else:
                follower = False
                self._stopping = True
                self._discard = not drain
        if follower:
            # Another caller owns the drain; wait for it rather than
            # double-joining the same threads.
            self._stop_event.wait(timeout)
            with self._lifecycle_lock:
                snapshot = self._final_snapshot
            return snapshot if snapshot is not None else self.metrics.snapshot()
        self.admission.close()
        try:
            if self._scheduler_thread is not None:
                self._scheduler_thread.join(timeout)
            if self.pool is not None:
                self.pool.end_of_stream()
                self.pool.join(timeout)
        finally:
            # Even if a join raised, leave the server in a terminal state
            # with a snapshot cached for every later caller.
            snapshot = self.metrics.snapshot()
            with self._lifecycle_lock:
                self._stopped = True
                self._final_snapshot = snapshot
            self._stop_event.set()
        return snapshot

    # -- request entry ---------------------------------------------------
    def submit(
        self,
        frame: FrameLike,
        frame_id: Optional[str] = None,
        options: Optional[SubmitOptions] = None,
        *,
        block: object = _UNSET,
        timeout: object = _UNSET,
        ttl: object = _UNSET,
    ):
        """Admit one frame; returns a future resolving to a FrameResponse.

        Per-request knobs travel as one
        :class:`~repro.session.SubmitOptions` (the legacy
        ``block``/``timeout``/``ttl`` kwargs still work behind a
        deprecation shim).  ``options.ttl`` (seconds, > 0) bounds how long
        the request may wait before dispatch: past it, the future resolves
        with :class:`~repro.serving.resilience.DeadlineExceeded` instead
        of being served (never a silent drop).
        ``options.class_name``/``options.priority`` select the serving
        policy class (ignored without a policy beyond metrics labelling).

        Raises :class:`~repro.serving.queue.QueueFull` under backpressure
        and :class:`~repro.serving.queue.QueueClosed` after shutdown.
        Under a policy, a rate-limited or load-shed request instead gets a
        future resolved with
        :class:`~repro.serving.policy.RateLimitExceeded` /
        :class:`~repro.serving.policy.LoadShed` -- typed results, and with
        ``admission="shed"`` the server never raises ``QueueFull``.
        """
        if not self._started:
            self.start()
        options = SubmitOptions.coerce(
            options, block=block, timeout=timeout, ttl=ttl,
            caller="FrameServer.submit",
        )
        request = FrameRequest.coerce(frame, index=next(self._submit_counter))
        if frame_id is not None:
            request = dataclasses.replace(request, frame_id=frame_id)
        if self.policy is not None:
            cls, priority = self.policy.resolve(
                options.class_name, options.priority
            )
            class_name = cls.name
        else:
            class_name = options.class_name or "default"
            priority = options.priority if options.priority is not None else 0
        if self.policy is not None and self.policy.rate_limit_hz is not None:
            assert self.pool is not None
            bucket = self._bucket_for(self.pool.shape_key(request.cloud))
            if bucket is not None and not bucket.try_acquire():
                self.metrics.record_rate_limited(class_name)
                return self._typed_failure(
                    RateLimitExceeded(
                        f"request {request.frame_id!r} rate-limited "
                        f"({self.policy.rate_limit_hz:g} Hz per shape key)"
                    )
                )
        # Count the submission before the entry becomes visible to the
        # scheduler: recording it afterwards opens a window where a fast
        # worker completes the request first and a live stats() snapshot
        # reports completed > submitted (negative in_flight).
        self.metrics.record_submitted()
        shed_mode = self.policy is not None and self.policy.admission == "shed"
        if shed_mode:
            assert self.policy is not None
            limit = max(
                1,
                self.policy.max_backlog
                if self.policy.max_backlog is not None
                else self.admission.capacity,
            )
            # The backlog budget counts *waiting* work -- queued plus
            # scheduler-pending -- which is exactly the stealable
            # population.  Requests already dispatched to workers are in
            # flight, not backlog: counting them would shed arrivals that
            # nothing pending could be evicted for.
            while self._waiting_depth() >= limit:
                victim = self.admission.steal_lowest(priority)
                if victim is None and self.scheduler is not None:
                    victim = self.scheduler.steal_lowest(priority)
                if victim is None:
                    # Nothing pending ranks below the incoming request:
                    # it is itself the lowest-priority work -- shed it.
                    self.metrics.record_load_shed(class_name)
                    return self._typed_failure(
                        LoadShed(
                            f"request {request.frame_id!r} shed at admission "
                            f"(backlog at {limit})"
                        )
                    )
                self._load_shed_entry(victim)
        try:
            entry = self.admission.submit(
                request,
                options=options,
                priority=priority,
                class_name=class_name,
            )
        except QueueFull:
            if shed_mode:
                # The queue proper filled even though the backlog budget
                # held (most work sits in the scheduler/workers).  Shed
                # typed rather than raise: submitted stays counted, the
                # caller gets a LoadShed future.
                self.metrics.record_load_shed(class_name)
                return self._typed_failure(
                    LoadShed(
                        f"request {request.frame_id!r} shed at admission "
                        f"(queue at capacity {self.admission.capacity})"
                    )
                )
            self.metrics.record_admission_failed()
            self.metrics.record_rejected()
            raise
        except QueueClosed:
            self.metrics.record_admission_failed()
            raise
        return entry.future

    def _waiting_depth(self) -> int:
        """Requests admitted but not yet dispatched to a worker."""
        depth = len(self.admission)
        if self.scheduler is not None:
            depth += self.scheduler.pending_count
        return depth

    def _bucket_for(self, key: Tuple[str, int, int]) -> Optional[TokenBucket]:
        if self.policy is None:
            return None
        with self._buckets_lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self.policy.make_bucket(self.clock)
                if bucket is None:
                    return None
                self._buckets[key] = bucket
            return bucket

    @staticmethod
    def _typed_failure(exc: BaseException) -> "Future":
        """A future pre-resolved with a typed serving exception."""
        future: "Future" = Future()
        future.set_running_or_notify_cancel()
        future.set_exception(exc)
        return future

    def _shed_entry(self, entry: QueuedRequest) -> None:
        """Resolve one expired entry with ``DeadlineExceeded`` (typed)."""
        now = self.clock()
        if entry.future.set_running_or_notify_cancel():
            entry.future.set_exception(
                DeadlineExceeded(
                    f"request {entry.request.frame_id!r} missed its deadline "
                    f"by {now - (entry.deadline or now):.3f}s before dispatch"
                )
            )
        self.metrics.record_shed(entry.class_name)

    def _load_shed_entry(self, entry: QueuedRequest) -> None:
        """Resolve one admission-shed victim with ``LoadShed`` (typed)."""
        if entry.future.set_running_or_notify_cancel():
            entry.future.set_exception(
                LoadShed(
                    f"request {entry.request.frame_id!r} "
                    f"(class {entry.class_name!r}, priority {entry.priority}) "
                    "shed for higher-priority admission"
                )
            )
        self.metrics.record_load_shed(entry.class_name)

    def stats(self) -> dict:
        """Live metrics snapshot (the server keeps running)."""
        return self.metrics.snapshot()

    def worker_stats(self) -> List[dict]:
        """Per-worker ``session.stats()`` (live for threads, last-reported
        for processes)."""
        if self.pool is None:
            return []
        return self.pool.worker_stats()

    # -- scheduler thread -------------------------------------------------
    def _scheduler_loop(self) -> None:
        scheduler = self.scheduler
        pool = self.pool
        assert scheduler is not None and pool is not None
        # The finally block guarantees end_of_stream is signalled even if
        # the loop dies on an unexpected exception -- otherwise the pool's
        # workers would wait for batches forever and shutdown's join would
        # hang the caller.  (end_of_stream is idempotent; shutdown calls it
        # again.)
        try:
            while True:
                if self.admission.is_drained():
                    # Shed expired entries even on the way out: a drain
                    # dispatches only what can still meet its deadline.
                    for entry in scheduler.shed_expired():
                        self._shed_entry(entry)
                    final = scheduler.drain()
                    if self._discard:
                        for batch in final:
                            for entry in batch.entries:
                                entry.future.cancel()
                                self.metrics.record_cancelled()
                    else:
                        for batch in final:
                            pool.dispatch(batch)
                    break
                deadline = scheduler.next_deadline()
                # Wake for whichever comes first: a batch deadline trigger
                # or a pending request's TTL expiry (so sheds are timely).
                expiry = scheduler.next_expiry()
                if expiry is not None:
                    deadline = expiry if deadline is None else min(deadline, expiry)
                if deadline is None:
                    timeout: Optional[float] = _IDLE_POLL_SECONDS
                else:
                    timeout = max(0.0, deadline - self.clock())
                entry = self.admission.pop(timeout=timeout)
                if entry is not None:
                    scheduler.add(entry)
                    # Sweep whatever else is already queued without
                    # blocking, so a burst fills a size-triggered batch in
                    # one pass.
                    while True:
                        extra = self.admission.pop(timeout=0)
                        if extra is None:
                            break
                        scheduler.add(extra)
                # Expired requests leave with DeadlineExceeded *before*
                # batch formation -- an expired entry is never dispatched.
                for entry in scheduler.shed_expired():
                    self._shed_entry(entry)
                for batch in scheduler.ready():
                    pool.dispatch(batch)
        finally:
            pool.end_of_stream()
