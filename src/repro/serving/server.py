"""Warm-session worker pool: admission queue -> scheduler -> N workers.

:class:`FrameServer` owns the full asynchronous serving path:

* callers :meth:`~FrameServer.submit` frames and get
  :class:`concurrent.futures.Future` objects back;
* a scheduler thread moves admitted requests into the
  :class:`~repro.serving.scheduler.MicroBatchScheduler` and dispatches the
  micro-batches it forms;
* ``num_workers`` worker threads each own one **warm**
  :class:`~repro.session.Session` (built by ``session_factory``) and drain
  dispatched batches through the existing bit-identical
  :meth:`~repro.session.Session.run_batch` path, resolving the per-request
  futures in admission order.

Determinism contract: every per-frame computation in the pipeline seeds its
RNG per call (samplers, gatherers, network layers), so a frame's response
payload -- logits, sampled indices, gather rows, counters, modelled
latencies -- depends only on the frame and the session configuration, never
on which worker served it or which companions shared its micro-batch.
:func:`response_signature` captures exactly that order-invariant payload;
the soak gate and the serving benchmarks compare it against a sequential
:meth:`Session.run_batch` run.  What *does* depend on scheduling is the
warm/cached flags and any per-worker response cache, which is why
signatures exclude them and serving sessions are normally built with
``response_cache_size=0``.

Shutdown is graceful by default: :meth:`shutdown` closes the admission
queue, the scheduler flushes its pending groups (trigger ``"drain"``), the
workers finish every dispatched batch, and only then do the threads exit --
no admitted request is dropped.  ``drain=False`` cancels instead.
"""

from __future__ import annotations

import dataclasses
import itertools
import queue as _stdlib_queue
import threading
import time
from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from repro.serving.metrics import Clock, RequestRecord, ServingMetrics
from repro.serving.queue import (
    AdmissionQueue,
    QueueClosed,
    QueuedRequest,
    QueueFull,
)
from repro.serving.scheduler import MicroBatch, MicroBatchScheduler
from repro.session import FrameLike, FrameRequest, FrameResponse, Session

#: How long the scheduler sleeps waiting for work when nothing is pending.
_IDLE_POLL_SECONDS = 0.05


def response_signature(response: FrameResponse) -> Tuple[Any, ...]:
    """The order-invariant payload of a response, for bit-identity checks.

    Covers logits, sampled indices, per-SA-layer gather rows, the data
    structuring counters, and the modelled latency breakdown.  Excludes the
    warm/cached flags, which legitimately depend on which worker served the
    frame and what it served before.
    """
    forward = response.result.inference.forward
    return (
        response.result.frame_id,
        forward.logits,
        response.result.preprocessing.sampling.indices,
        tuple(
            trace.gather.neighbor_indices
            for trace in forward.sa_traces
            if trace.gather is not None
        ),
        dataclasses.asdict(response.result.inference.workload.data_structuring),
        tuple(response.result.breakdown.as_dict().items()),
    )


def signatures_equal(a: Any, b: Any) -> bool:
    """Deep equality over signature tuples (arrays compared elementwise)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    if isinstance(a, (tuple, list)):
        return (
            isinstance(b, (tuple, list))
            and len(a) == len(b)
            and all(signatures_equal(x, y) for x, y in zip(a, b))
        )
    if isinstance(a, dict):
        return (
            isinstance(b, dict)
            and a.keys() == b.keys()
            and all(signatures_equal(a[k], b[k]) for k in a)
        )
    return bool(a == b)


class FrameServer:
    """Asynchronous point-cloud serving over a pool of warm sessions.

    Parameters
    ----------
    session_factory:
        Zero-argument callable building one :class:`Session` per worker.
        Factories must return *distinct* sessions for distinct workers
        (sessions are not thread-safe); for deterministic cross-worker
        results, build them with identical configs and
        ``response_cache_size=0``.
    num_workers:
        Worker threads (one warm session each).
    max_batch_size / max_wait_seconds / batch_rows_budget:
        Micro-batch triggers (see
        :class:`~repro.serving.scheduler.MicroBatchScheduler`).  The rows
        budget defaults to the sessions' own ``batch_rows_budget``.
    queue_capacity:
        Admission queue bound (backpressure above it).
    clock:
        Injectable monotonic clock shared by every serving component.
    """

    def __init__(
        self,
        session_factory: Callable[[], Session],
        num_workers: int = 1,
        max_batch_size: int = 8,
        max_wait_seconds: float = 0.005,
        queue_capacity: int = 256,
        batch_rows_budget: Optional[int] = None,
        clock: Clock = time.monotonic,
        name: str = "serving",
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.session_factory = session_factory
        self.num_workers = int(num_workers)
        self.name = name
        self.clock = clock
        self.metrics = ServingMetrics()
        self.admission = AdmissionQueue(capacity=queue_capacity, clock=clock)
        self.sessions: List[Session] = []
        self._max_batch_size = max_batch_size
        self._max_wait_seconds = max_wait_seconds
        self._batch_rows_budget = batch_rows_budget
        self.scheduler: Optional[MicroBatchScheduler] = None
        self._dispatch: "_stdlib_queue.Queue[Optional[MicroBatch]]" = (
            _stdlib_queue.Queue()
        )
        self._threads: List[threading.Thread] = []
        #: Numbers raw clouds submitted without a frame_id so each gets a
        #: distinct id *within this server*.  The ids are not coordinated
        #: with the synchronous path's frames_processed numbering (and
        #: restart with every new server); pass FrameRequests with explicit
        #: frame_ids when ids must be stable across paths.
        self._submit_counter = itertools.count()
        self._started = False
        self._stopped = False
        self._discard = False
        self._lifecycle_lock = threading.Lock()

    # -- life cycle -----------------------------------------------------
    def start(self) -> "FrameServer":
        with self._lifecycle_lock:
            if self._started:
                return self
            if self._stopped:
                raise RuntimeError("FrameServer cannot be restarted")
            self.sessions = [self.session_factory() for _ in range(self.num_workers)]
            if len(set(map(id, self.sessions))) != len(self.sessions):
                raise ValueError(
                    "session_factory must build a distinct Session per worker"
                )
            if self._batch_rows_budget is None:
                self._batch_rows_budget = self.sessions[0].batch_rows_budget
            self.scheduler = MicroBatchScheduler(
                shape_key=lambda request: self.sessions[0].shape_key(request.cloud),
                max_batch_size=self._max_batch_size,
                max_wait_seconds=self._max_wait_seconds,
                batch_rows_budget=self._batch_rows_budget,
                clock=self.clock,
            )
            scheduler_thread = threading.Thread(
                target=self._scheduler_loop,
                name=f"{self.name}-scheduler",
                daemon=True,
            )
            self._threads.append(scheduler_thread)
            for worker_index in range(self.num_workers):
                self._threads.append(
                    threading.Thread(
                        target=self._worker_loop,
                        args=(worker_index,),
                        name=f"{self.name}-worker-{worker_index}",
                        daemon=True,
                    )
                )
            for thread in self._threads:
                thread.start()
            self._started = True
            return self

    def __enter__(self) -> "FrameServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    def shutdown(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> dict:
        """Stop serving and return the final metrics snapshot.

        ``drain=True`` (the default) completes every admitted request first;
        ``drain=False`` cancels whatever has not been dispatched yet.
        """
        with self._lifecycle_lock:
            if self._stopped or not self._started:
                self._stopped = True
                self.admission.close()
                return self.metrics.snapshot()
            self._discard = not drain
            self.admission.close()
            for thread in self._threads:
                thread.join(timeout)
            self._stopped = True
            return self.metrics.snapshot()

    # -- request entry ---------------------------------------------------
    def submit(
        self,
        frame: FrameLike,
        frame_id: Optional[str] = None,
        block: bool = False,
        timeout: Optional[float] = None,
    ):
        """Admit one frame; returns a future resolving to a FrameResponse.

        Raises :class:`~repro.serving.queue.QueueFull` under backpressure
        and :class:`~repro.serving.queue.QueueClosed` after shutdown.
        """
        if not self._started:
            self.start()
        request = FrameRequest.coerce(frame, index=next(self._submit_counter))
        if frame_id is not None:
            request = dataclasses.replace(request, frame_id=frame_id)
        # Count the submission before the entry becomes visible to the
        # scheduler: recording it afterwards opens a window where a fast
        # worker completes the request first and a live stats() snapshot
        # reports completed > submitted (negative in_flight).
        self.metrics.record_submitted()
        try:
            entry = self.admission.submit(request, block=block, timeout=timeout)
        except QueueFull:
            self.metrics.record_admission_failed()
            self.metrics.record_rejected()
            raise
        except QueueClosed:
            self.metrics.record_admission_failed()
            raise
        return entry.future

    def stats(self) -> dict:
        """Live metrics snapshot (the server keeps running)."""
        return self.metrics.snapshot()

    # -- scheduler thread -------------------------------------------------
    def _scheduler_loop(self) -> None:
        scheduler = self.scheduler
        assert scheduler is not None
        # The finally block guarantees the worker sentinels are posted even
        # if the loop dies on an unexpected exception -- otherwise every
        # worker would block in dispatch.get() forever and shutdown's
        # join() would hang the caller.
        try:
            while True:
                if self.admission.is_drained():
                    final = scheduler.drain()
                    if self._discard:
                        for batch in final:
                            for entry in batch.entries:
                                entry.future.cancel()
                                self.metrics.record_cancelled()
                    else:
                        for batch in final:
                            self._dispatch.put(batch)
                    break
                deadline = scheduler.next_deadline()
                if deadline is None:
                    timeout: Optional[float] = _IDLE_POLL_SECONDS
                else:
                    timeout = max(0.0, deadline - self.clock())
                entry = self.admission.pop(timeout=timeout)
                if entry is not None:
                    scheduler.add(entry)
                    # Sweep whatever else is already queued without
                    # blocking, so a burst fills a size-triggered batch in
                    # one pass.
                    while True:
                        extra = self.admission.pop(timeout=0)
                        if extra is None:
                            break
                        scheduler.add(extra)
                for batch in scheduler.ready():
                    self._dispatch.put(batch)
        finally:
            for _ in range(self.num_workers):
                self._dispatch.put(None)

    # -- worker threads ---------------------------------------------------
    def _worker_loop(self, worker_index: int) -> None:
        session = self.sessions[worker_index]
        worker_name = f"{self.name}-worker-{worker_index}"
        while True:
            batch = self._dispatch.get()
            if batch is None:
                break
            dispatched_at = self.clock()
            for entry in batch.entries:
                entry.dispatched_at = dispatched_at
            try:
                result = session.run_batch(
                    [entry.request for entry in batch.entries]
                )
                responses: List[Optional[FrameResponse]] = list(result.responses)
                error: Optional[BaseException] = None
            except Exception as exc:  # resolve futures, keep serving
                responses = [None] * len(batch.entries)
                error = exc
            completed_at = self.clock()
            for entry, response in zip(batch.entries, responses):
                completion_index = self.metrics.next_completion_index()
                if entry.future.set_running_or_notify_cancel():
                    if error is None:
                        entry.future.set_result(response)
                    else:
                        entry.future.set_exception(error)
                self.metrics.record(
                    RequestRecord(
                        sequence=entry.sequence,
                        frame_id=entry.request.frame_id,
                        enqueued_at=entry.enqueued_at,
                        dispatched_at=dispatched_at,
                        completed_at=completed_at,
                        completion_index=completion_index,
                        batch_id=batch.batch_id,
                        batch_size=len(batch.entries),
                        trigger=batch.trigger,
                        worker=worker_name,
                        ok=error is None,
                    )
                )
