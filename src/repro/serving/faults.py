"""Deterministic fault injection for the serving stack.

A :class:`FaultPlan` is a seeded, declarative script of failures -- "kill
worker 0 when it starts its 3rd batch", "add 25 ms to every batch worker 1
runs", "corrupt the transport manifest of worker 0's 2nd response" -- that
rides into :class:`~repro.serving.cluster.pool.ProcessWorkerPool` workers
over the fork and is consulted at well-defined points:

* ``on_batch_start(worker, generation, ordinal)`` -- called by the worker
  main loop before executing a batch; applies **slow** faults (sleep) and
  **kill** faults (``os._exit``), in that order.
* ``should_poison(worker, generation, ordinal)`` -- checked after encoding
  a response; :func:`poison_message` then corrupts the manifest so the
  parent's decode raises a ``TransportError`` deterministically (the
  payload bytes are untouched -- corruption is *detected*, never silently
  decoded).

Every spec matches a specific worker **generation** (default 0, the
original spawn).  A respawned replacement runs generation >= 1, so a kill
spec fires exactly once instead of crash-looping the replacement -- which
is what lets a chaos soak assert full recovery.

``ThreadWorkerPool`` honours only **slow** faults (killing a thread would
take the whole process down); the process pool honours all three kinds.
The plan is a small picklable value object: determinism comes from the
explicit (worker, generation, ordinal) coordinates, and ``seed`` is carried
so a soak report can name the exact scenario it ran.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Any, Callable, Dict, List

#: Fault kinds.
FAULT_KILL = "kill"
FAULT_SLOW = "slow"
FAULT_POISON = "poison"

_KINDS = (FAULT_KILL, FAULT_SLOW, FAULT_POISON)


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One scripted fault, addressed by (worker, generation, batch ordinal)."""

    kind: str
    worker_index: int
    #: 0-based ordinal of the worker's batch at which the fault fires.
    after_batches: int
    #: Worker generation the spec applies to (0 = original spawn).
    generation: int = 0
    #: Added latency for ``slow`` faults, seconds.
    delay_seconds: float = 0.0
    #: How many consecutive ordinals a ``slow``/``poison`` fault affects.
    times: int = 1
    #: Exit status used by ``kill`` faults.
    exit_code: int = 86

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.worker_index < 0:
            raise ValueError(f"worker_index must be >= 0, got {self.worker_index}")
        if self.after_batches < 0:
            raise ValueError(f"after_batches must be >= 0, got {self.after_batches}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.delay_seconds < 0:
            raise ValueError(f"delay_seconds must be >= 0, got {self.delay_seconds}")

    def matches(self, worker_index: int, generation: int, ordinal: int) -> bool:
        if self.worker_index != worker_index or self.generation != generation:
            return False
        if self.kind == FAULT_KILL:
            return ordinal == self.after_batches
        return self.after_batches <= ordinal < self.after_batches + self.times


class FaultPlan:
    """A seeded, ordered collection of :class:`FaultSpec`.

    Builders chain: ``FaultPlan(seed=42).kill_worker(0, after_batches=2)
    .slow_worker(1, delay_seconds=0.025)``.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.specs: List[FaultSpec] = []

    # -- builders -------------------------------------------------------
    def kill_worker(
        self,
        worker_index: int,
        after_batches: int,
        generation: int = 0,
        exit_code: int = 86,
    ) -> "FaultPlan":
        """Kill worker ``worker_index`` as it starts batch ``after_batches``."""
        self.specs.append(
            FaultSpec(
                kind=FAULT_KILL,
                worker_index=worker_index,
                after_batches=after_batches,
                generation=generation,
                exit_code=exit_code,
            )
        )
        return self

    def slow_worker(
        self,
        worker_index: int,
        delay_seconds: float,
        after_batches: int = 0,
        times: int = 1_000_000,
        generation: int = 0,
    ) -> "FaultPlan":
        """Add ``delay_seconds`` to ``times`` batches starting at an ordinal."""
        self.specs.append(
            FaultSpec(
                kind=FAULT_SLOW,
                worker_index=worker_index,
                after_batches=after_batches,
                generation=generation,
                delay_seconds=delay_seconds,
                times=times,
            )
        )
        return self

    def poison_response(
        self,
        worker_index: int,
        after_batches: int,
        times: int = 1,
        generation: int = 0,
    ) -> "FaultPlan":
        """Corrupt the transport manifest of the worker's response(s)."""
        self.specs.append(
            FaultSpec(
                kind=FAULT_POISON,
                worker_index=worker_index,
                after_batches=after_batches,
                generation=generation,
                times=times,
            )
        )
        return self

    # -- consultation ---------------------------------------------------
    def slow_delay(self, worker_index: int, generation: int, ordinal: int) -> float:
        """Total scripted latency for this batch, seconds (0.0 when none)."""
        return sum(
            spec.delay_seconds
            for spec in self.specs
            if spec.kind == FAULT_SLOW
            and spec.matches(worker_index, generation, ordinal)
        )

    def kill_spec(self, worker_index, generation, ordinal):
        for spec in self.specs:
            if spec.kind == FAULT_KILL and spec.matches(
                worker_index, generation, ordinal
            ):
                return spec
        return None

    def should_poison(self, worker_index: int, generation: int, ordinal: int) -> bool:
        return any(
            spec.kind == FAULT_POISON
            and spec.matches(worker_index, generation, ordinal)
            for spec in self.specs
        )

    def on_batch_start(
        self,
        worker_index: int,
        generation: int,
        ordinal: int,
        sleep: Callable[[float], None] = time.sleep,
        exit: Callable[[int], None] = os._exit,
    ) -> None:
        """Apply slow then kill faults for this batch (worker-side hook)."""
        delay = self.slow_delay(worker_index, generation, ordinal)
        if delay > 0:
            sleep(delay)
        spec = self.kill_spec(worker_index, generation, ordinal)
        if spec is not None:
            exit(spec.exit_code)

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly summary for soak reports."""
        return {
            "seed": self.seed,
            "specs": [dataclasses.asdict(spec) for spec in self.specs],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan(seed={self.seed}, specs={self.specs!r})"


def poison_message(message):
    """Corrupt a :class:`~repro.serving.cluster.transport.TransportMessage`.

    Inflates the first manifest entry's recorded ``nbytes`` so the reader's
    bounds validation raises ``TransportError`` before any array is built.
    The stored bytes are untouched: a poisoned segment can never silently
    decode into wrong data.
    """
    if not message.manifest:
        return message
    first = message.manifest[0]
    corrupted = dataclasses.replace(first, nbytes=first.nbytes + 1)
    return dataclasses.replace(
        message, manifest=(corrupted,) + tuple(message.manifest[1:])
    )
