"""Serving policy: priority classes, rate limits, adaptive wait, SLO shedding.

This module is the front-of-queue policy layer from ROADMAP item 3.  A
:class:`ServingPolicy` is a declarative bundle the
:class:`~repro.serving.server.FrameServer` threads through its admission
queue and :class:`~repro.serving.scheduler.MicroBatchScheduler`:

* **Priority classes** (:class:`PriorityClass`): every request carries a
  class name; higher ``priority`` wins scheduler ordering, a ``preempt``
  class's arrival dispatches its shape group immediately (trigger
  ``"priority"``) instead of waiting for the size trigger, and a per-class
  ``max_wait_seconds`` caps the deadline trigger below the scheduler's own.
  ``slo_ms`` declares the class's p99 budget -- the soak and benchmark
  gates read it; the scheduler does not.
* **Token-bucket rate limits** (:class:`TokenBucket`): per warm-shape-key
  buckets refilled on the injected clock; a denied submit resolves the
  future with :class:`RateLimitExceeded` (typed, never silent).
* **Adaptive max-wait** (:class:`AdaptiveMaxWait`): the deadline trigger
  tracks the observed arrival rate -- an EWMA of inter-arrival gaps on the
  injectable clock -- waiting only as long as ``max_batch - 1`` companions
  plausibly take to arrive, clamped between a floor and the configured
  ``max_wait_seconds`` ceiling (adaptation only ever *shortens* the wait;
  the configured cap stays the tail-latency bound).
* **SLO-aware admission** (``admission="shed"``): instead of raising
  :class:`~repro.serving.queue.QueueFull`, an over-backlog submit sheds the
  lowest-priority pending work -- a strictly lower-priority victim when one
  exists, else the incoming request itself -- resolving the shed future
  with :class:`LoadShed`.  Nothing is ever dropped silently and ``submit``
  never raises for backpressure.

Every decision runs on the serving subsystem's injected clock, so tests
drive all of it deterministically with a
:class:`~repro.serving.metrics.ManualClock`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.serving.metrics import Clock


class LoadShed(RuntimeError):
    """Typed result of SLO-aware admission shedding this request.

    Raised *through the future*, never from ``submit``: under
    ``admission="shed"`` an over-backlog submit resolves either a pending
    lower-priority victim or the incoming request itself with this
    exception instead of raising ``QueueFull``.
    """


class RateLimitExceeded(RuntimeError):
    """Typed result of a per-shape-key token bucket denying admission."""


@dataclass(frozen=True)
class PriorityClass:
    """One traffic class: a name, a rank, and its scheduling overrides."""

    name: str
    #: Scheduler rank; higher wins grouping order and survives shedding.
    priority: int = 0
    #: Declared p99 latency budget in ms (enforced by soak/bench gates,
    #: observed via the per-class percentiles in ``ServingMetrics``).
    slo_ms: Optional[float] = None
    #: Per-class cap on the deadline trigger; ``None`` defers to the
    #: scheduler's (possibly adaptive) wait.
    max_wait_seconds: Optional[float] = None
    #: Arrival of this class preempts the size trigger: its shape group
    #: dispatches immediately with trigger ``"priority"``.
    preempt: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("priority class name must be non-empty")
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ValueError(f"slo_ms must be > 0, got {self.slo_ms}")
        if self.max_wait_seconds is not None and self.max_wait_seconds < 0:
            raise ValueError(
                f"max_wait_seconds must be >= 0, got {self.max_wait_seconds}"
            )


class TokenBucket:
    """A deterministic token bucket on an injectable clock.

    ``rate_hz`` tokens accrue per second up to ``burst`` capacity; the
    bucket starts full.  Refill happens lazily inside :meth:`try_acquire`
    from the elapsed clock time, so a test advancing a
    :class:`~repro.serving.metrics.ManualClock` gets exact token
    accounting (no background thread, no wall-clock reads).
    """

    def __init__(
        self, rate_hz: float, burst: int = 8, clock: Clock = time.monotonic
    ):
        if rate_hz <= 0:
            raise ValueError(f"rate_hz must be > 0, got {rate_hz}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate_hz = float(rate_hz)
        self.burst = int(burst)
        self.clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; ``False`` means rate-limited."""
        with self._lock:
            now = self.clock()
            elapsed = max(0.0, now - self._refilled_at)
            self._refilled_at = now
            self._tokens = min(
                float(self.burst), self._tokens + elapsed * self.rate_hz
            )
            if self._tokens + 1e-9 < tokens:
                return False
            self._tokens -= tokens
            return True

    @property
    def tokens(self) -> float:
        """Current token count (as of the last acquire; no refill)."""
        with self._lock:
            return self._tokens


class AdaptiveMaxWait:
    """Deadline-trigger wait tuned to the observed arrival rate.

    Tracks an exponentially weighted moving average of inter-arrival gaps
    (``alpha`` weight on the newest gap) and proposes waiting
    ``(max_batch - 1) * mean_gap`` seconds for companions -- the time a
    full batch plausibly takes to assemble at the observed rate.  The
    proposal is clamped to ``[floor_seconds, base_wait_seconds]``: under
    heavy traffic the wait collapses toward the floor (companions arrive
    fast; waiting longer only adds latency), under sparse traffic it rises
    to -- never past -- the configured ceiling.  Until two arrivals have
    been observed there is no gap to average and :meth:`current` returns
    the base wait.
    """

    def __init__(
        self,
        base_wait_seconds: float,
        floor_seconds: float = 0.0005,
        alpha: float = 0.2,
        batch_size: int = 8,
    ):
        if base_wait_seconds < 0:
            raise ValueError(
                f"base_wait_seconds must be >= 0, got {base_wait_seconds}"
            )
        if floor_seconds < 0:
            raise ValueError(f"floor_seconds must be >= 0, got {floor_seconds}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.base_wait_seconds = float(base_wait_seconds)
        self.floor_seconds = min(float(floor_seconds), self.base_wait_seconds)
        self.alpha = float(alpha)
        self.batch_size = int(batch_size)
        self._last_arrival: Optional[float] = None
        self._mean_gap: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, now: float) -> None:
        """Feed one arrival timestamp (the entry's ``enqueued_at``)."""
        with self._lock:
            if self._last_arrival is not None:
                gap = max(0.0, now - self._last_arrival)
                if self._mean_gap is None:
                    self._mean_gap = gap
                else:
                    self._mean_gap += self.alpha * (gap - self._mean_gap)
            self._last_arrival = now

    def current(self) -> float:
        """The effective deadline-trigger wait right now (seconds)."""
        with self._lock:
            if self._mean_gap is None:
                return self.base_wait_seconds
            proposal = (self.batch_size - 1) * self._mean_gap
            return min(
                self.base_wait_seconds, max(self.floor_seconds, proposal)
            )

    @property
    def mean_interarrival(self) -> Optional[float]:
        with self._lock:
            return self._mean_gap


#: Recognised values of ``ServingPolicy.admission``.
ADMISSION_MODES = ("reject", "shed")


@dataclass(frozen=True)
class ServingPolicy:
    """Declarative serving policy threaded through queue and scheduler.

    ``classes`` must contain ``default_class``; requests submitted without
    an explicit class ride it.  ``admission="reject"`` keeps the legacy
    ``QueueFull`` backpressure; ``"shed"`` switches to SLO-aware admission
    (see module docstring).  ``max_backlog`` is the shed threshold --
    admitted-but-unfinished requests across queue, scheduler, and workers
    -- and defaults (``None``) to the server's queue capacity.
    """

    classes: Tuple[PriorityClass, ...] = (PriorityClass("default"),)
    default_class: str = "default"
    admission: str = "reject"
    max_backlog: Optional[int] = None
    #: Per-shape-key token-bucket rate (``None`` disables rate limiting).
    rate_limit_hz: Optional[float] = None
    rate_limit_burst: int = 8
    adaptive_max_wait: bool = False
    #: Floor of the adaptive wait (ignored unless ``adaptive_max_wait``).
    min_wait_seconds: float = 0.0005
    adaptive_alpha: float = 0.2

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("policy needs at least one priority class")
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate priority class names: {names}")
        if self.default_class not in names:
            raise ValueError(
                f"default_class {self.default_class!r} is not one of {names}"
            )
        if self.admission not in ADMISSION_MODES:
            raise ValueError(
                f"admission must be one of {ADMISSION_MODES}, "
                f"got {self.admission!r}"
            )
        if self.max_backlog is not None and self.max_backlog < 1:
            raise ValueError(f"max_backlog must be >= 1, got {self.max_backlog}")
        if self.rate_limit_hz is not None and self.rate_limit_hz <= 0:
            raise ValueError(
                f"rate_limit_hz must be > 0, got {self.rate_limit_hz}"
            )
        if self.rate_limit_burst < 1:
            raise ValueError(
                f"rate_limit_burst must be >= 1, got {self.rate_limit_burst}"
            )

    @property
    def class_map(self) -> Dict[str, PriorityClass]:
        return {cls.name: cls for cls in self.classes}

    def class_named(self, name: str) -> PriorityClass:
        try:
            return self.class_map[name]
        except KeyError:
            raise KeyError(
                f"unknown priority class {name!r}; "
                f"policy classes: {sorted(self.class_map)}"
            ) from None

    def resolve(
        self,
        class_name: Optional[str] = None,
        priority: Optional[int] = None,
    ) -> Tuple[PriorityClass, int]:
        """Map a request's submit options to ``(class, effective priority)``.

        An explicit ``priority`` overrides the class's rank for this one
        request (the class still governs preemption and per-class wait).
        """
        cls = self.class_named(
            class_name if class_name is not None else self.default_class
        )
        return cls, (cls.priority if priority is None else int(priority))

    def make_bucket(self, clock: Clock) -> Optional[TokenBucket]:
        """A fresh per-shape-key token bucket, or ``None`` when unlimited."""
        if self.rate_limit_hz is None:
            return None
        return TokenBucket(
            rate_hz=self.rate_limit_hz,
            burst=self.rate_limit_burst,
            clock=clock,
        )

    def make_adaptive_wait(
        self, base_wait_seconds: float, batch_size: int
    ) -> Optional[AdaptiveMaxWait]:
        if not self.adaptive_max_wait:
            return None
        return AdaptiveMaxWait(
            base_wait_seconds=base_wait_seconds,
            floor_seconds=self.min_wait_seconds,
            alpha=self.adaptive_alpha,
            batch_size=batch_size,
        )

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary for soak/bench reports."""
        return {
            "classes": [
                {
                    "name": cls.name,
                    "priority": cls.priority,
                    "slo_ms": cls.slo_ms,
                    "max_wait_ms": (
                        None
                        if cls.max_wait_seconds is None
                        else cls.max_wait_seconds * 1e3
                    ),
                    "preempt": cls.preempt,
                }
                for cls in self.classes
            ],
            "default_class": self.default_class,
            "admission": self.admission,
            "max_backlog": self.max_backlog,
            "rate_limit_hz": self.rate_limit_hz,
            "rate_limit_burst": self.rate_limit_burst,
            "adaptive_max_wait": self.adaptive_max_wait,
        }
