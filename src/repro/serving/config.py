"""Typed serve configuration shared by the CLI and the benchmark harness.

:class:`ServeConfig` is the one description of a serving soak: what traffic
to generate, under which serving policy, on what execution substrate, with
which chaos plan.  The ``serve`` CLI parses straight into it
(:meth:`ServeConfig.add_cli_args` declares the argparse groups,
:meth:`ServeConfig.from_args` reads them back) and
``benchmarks/run_all.py`` constructs it directly -- one source of truth
instead of two copies of the same ~20-knob plumbing.

The sub-configs mirror the argparse groups:

* :class:`TrafficConfig` -- which registered ``"traffic"`` model generates
  the request stream (``None`` keeps the legacy dataset-frames +
  seeded-Poisson path), its rate, and model-specific parameters;
* :class:`PolicyConfig` -- priority-class specs
  (``name:priority[:slo_ms][:preempt]``), admission mode, rate limits,
  adaptive max-wait -- building an optional
  :class:`~repro.serving.policy.ServingPolicy`;
* :class:`ExecutionConfig` -- workers, execution mode, shards, micro-batch
  triggers, pipeline components;
* :class:`ChaosConfig` -- the seeded fault plan.

Everything a builder returns is a pure function of the config (and its
seed), so two processes constructing the same ``ServeConfig`` drive
byte-identical soaks.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import registry
from repro.core.config import (
    HgPCNConfig,
    InferenceEngineConfig,
    PreprocessingConfig,
)
from repro.serving.faults import FaultPlan
from repro.serving.policy import (
    ADMISSION_MODES,
    PriorityClass,
    ServingPolicy,
)
from repro.serving.traffic import TrafficItem, TrafficModel

#: Registry dataset name -> Table I task (the CLI's mapping).
DATASET_TASKS = {
    "modelnet40": "classification",
    "shapenet": "part_segmentation",
    "s3dis": "semantic_segmentation",
    "kitti": "semantic_segmentation",
}


def positive_int(text: str) -> int:
    """argparse type: integer >= 1 (clean error instead of a deep crash)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}"
        )
    return value


def nonnegative_int(text: str) -> int:
    """argparse type: integer >= 0 (0 is the documented sentinel)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {value}"
        )
    return value


def positive_float(text: str) -> float:
    """argparse type: finite float > 0 (clean error instead of a deep crash)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not value > 0 or not np.isfinite(value):
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text}"
        )
    return value


def parse_class_spec(spec: str) -> PriorityClass:
    """Parse one ``--classes`` item: ``name:priority[:slo_ms][:preempt]``.

    Examples: ``high:10:50:preempt`` (priority 10, 50 ms SLO, preempting),
    ``low:0`` (priority 0, no SLO).  The optional third field is the SLO
    budget in ms; a trailing ``preempt`` token makes arrivals of the class
    dispatch their shape group immediately.
    """
    parts = [p for p in spec.split(":") if p != ""]
    if not parts:
        raise argparse.ArgumentTypeError(f"empty class spec {spec!r}")
    name = parts[0]
    priority = 0
    slo_ms: Optional[float] = None
    preempt = False
    rest = parts[1:]
    if rest and rest[0] != "preempt":
        try:
            priority = int(rest[0])
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"class spec {spec!r}: priority must be an integer, "
                f"got {rest[0]!r}"
            )
        rest = rest[1:]
    if rest and rest[0] != "preempt":
        try:
            slo_ms = float(rest[0])
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"class spec {spec!r}: slo_ms must be a number, got {rest[0]!r}"
            )
        rest = rest[1:]
    if rest:
        if rest != ["preempt"]:
            raise argparse.ArgumentTypeError(
                f"class spec {spec!r}: unexpected trailing {rest!r} "
                "(expected 'preempt')"
            )
        preempt = True
    try:
        return PriorityClass(
            name=name, priority=priority, slo_ms=slo_ms, preempt=preempt
        )
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"class spec {spec!r}: {exc}")


def _parse_traffic_param(text: str) -> Tuple[str, Any]:
    """Parse one ``--traffic-param key=value`` (value coerced to a number
    when it looks like one)."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {text!r}"
        )
    key, raw = text.split("=", 1)
    value: Any = raw
    for cast in (int, float):
        try:
            value = cast(raw)
            break
        except ValueError:
            continue
    return key.replace("-", "_"), value


@dataclass
class TrafficConfig:
    """Which traffic model generates the request stream, and how fast."""

    #: Registered ``"traffic"`` model name; ``None`` keeps the legacy
    #: dataset-frames + seeded-Poisson request path.
    model: Optional[str] = None
    #: Mean arrival rate in Hz (0 = submit everything at once).
    rate_hz: float = 100.0
    #: Raw cloud size for model-generated frames.
    raw_points: int = 400
    #: Per-item class draw weights, parallel to the policy's class list
    #: (``None`` -> uniform).  Only used when a policy defines classes.
    class_weights: Optional[Tuple[float, ...]] = None
    #: Model-specific constructor kwargs (e.g. ``burst_size``, ``sigma``).
    params: Dict[str, Any] = field(default_factory=dict)

    def build(
        self,
        frames: int,
        seed: int,
        class_names: Sequence[str] = (),
    ) -> Optional[TrafficModel]:
        """Instantiate the registered model (``None`` when unset)."""
        if self.model is None:
            return None
        kwargs: Dict[str, Any] = dict(
            frames=frames,
            rate_hz=self.rate_hz,
            seed=seed,
            raw_points=self.raw_points,
            **self.params,
        )
        if class_names:
            kwargs["class_names"] = tuple(class_names)
            if self.class_weights is not None:
                kwargs["class_weights"] = self.class_weights
        return registry.create("traffic", self.model, **kwargs)


@dataclass
class PolicyConfig:
    """Serving-policy knobs; :meth:`build` returns ``None`` when untouched."""

    classes: Tuple[PriorityClass, ...] = ()
    default_class: Optional[str] = None
    admission: str = "reject"
    max_backlog: Optional[int] = None
    rate_limit_hz: Optional[float] = None
    rate_limit_burst: int = 8
    adaptive_max_wait: bool = False
    min_wait_ms: float = 0.5
    adaptive_alpha: float = 0.2

    @property
    def configured(self) -> bool:
        return bool(
            self.classes
            or self.admission != "reject"
            or self.rate_limit_hz is not None
            or self.adaptive_max_wait
        )

    def build(self) -> Optional[ServingPolicy]:
        if not self.configured:
            return None
        classes = self.classes or (PriorityClass("default"),)
        names = [cls.name for cls in classes]
        default = self.default_class
        if default is None:
            # Lowest-priority class is the natural default: unlabelled
            # traffic should not outrank labelled high-priority work.
            default = min(classes, key=lambda c: (c.priority, c.name)).name
        elif default not in names:
            raise ValueError(
                f"default class {default!r} is not one of {names}"
            )
        return ServingPolicy(
            classes=tuple(classes),
            default_class=default,
            admission=self.admission,
            max_backlog=self.max_backlog,
            rate_limit_hz=self.rate_limit_hz,
            rate_limit_burst=self.rate_limit_burst,
            adaptive_max_wait=self.adaptive_max_wait,
            min_wait_seconds=self.min_wait_ms / 1e3,
            adaptive_alpha=self.adaptive_alpha,
        )


@dataclass
class ExecutionConfig:
    """Workers, shards, micro-batch triggers, and pipeline components."""

    workers: int = 2
    execution: str = "thread"
    shards: int = 1
    max_batch: int = 8
    max_wait_ms: float = 5.0
    #: Admission queue bound (0 = sized to the request count).
    queue_capacity: int = 0
    #: Stacked-rows cap per dispatch (0 = session default).
    batch_rows_budget: int = 0
    sampler: str = "ois"
    accelerator: str = "hgpcn"
    backend: Optional[str] = None
    preprocess_workers: Optional[int] = None


@dataclass
class ChaosConfig:
    """Seeded fault plan for chaos soaks (requires process execution)."""

    enabled: bool = False
    kill_after: int = 2
    slow_ms: float = 25.0

    def build(self, seed: int, workers: int) -> Optional[FaultPlan]:
        if not self.enabled:
            return None
        faults = FaultPlan(seed=seed).kill_worker(
            0, after_batches=self.kill_after
        )
        if workers > 1:
            faults.slow_worker(1, delay_seconds=self.slow_ms / 1e3)
        return faults


@dataclass
class ServeConfig:
    """Everything one serving soak needs, CLI- and benchmark-constructible."""

    dataset: str = "kitti"
    scale: float = 0.001
    samples: int = 64
    neighbors: int = 8
    seed: int = 0
    frames: int = 200
    verify: bool = True
    metrics_out: Path = Path("serving_metrics.json")
    p99_budget_ms: float = 10_000.0
    request_timeout: float = 300.0
    #: Gate: fail unless at least this many requests were load-shed (a
    #: shed soak where nothing shed proves nothing; 0 disables).
    min_load_sheds: int = 0
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    policy: PolicyConfig = field(default_factory=PolicyConfig)
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    chaos: ChaosConfig = field(default_factory=ChaosConfig)

    # -- argparse integration --------------------------------------------
    @staticmethod
    def add_cli_args(parser: argparse.ArgumentParser) -> None:
        """Declare the ``serve`` flags as traffic/policy/execution/chaos
        argparse groups (flag names unchanged from the pre-group CLI)."""
        parser.add_argument(
            "--dataset", choices=sorted(DATASET_TASKS), default="kitti"
        )
        parser.add_argument(
            "--scale", type=float, default=0.001,
            help="fraction of the paper-scale raw frame to generate",
        )
        parser.add_argument(
            "--samples", type=positive_int, default=64,
            help="down-sampled input size (default 64)",
        )
        parser.add_argument("--neighbors", type=positive_int, default=8)
        parser.add_argument("--seed", type=nonnegative_int, default=0)
        parser.add_argument(
            "--frames", type=positive_int, default=200,
            help="number of synthetic requests to serve",
        )
        parser.add_argument(
            "--metrics-out", type=Path, default=Path("serving_metrics.json"),
            help="where to write the JSON metrics report",
        )
        parser.add_argument(
            "--p99-budget-ms", type=float, default=10_000.0,
            help="fail when p99 end-to-end latency exceeds this (0 disables)",
        )
        parser.add_argument(
            "--request-timeout", type=positive_float, default=300.0,
            help="per-request future.result timeout in seconds (default 300)",
        )
        parser.add_argument(
            "--no-verify", dest="verify", action="store_false",
            help="skip the bit-identity check against a sequential run_batch",
        )
        parser.add_argument(
            "--min-load-sheds", type=nonnegative_int, default=0,
            help="fail unless at least this many requests were load-shed "
                 "(validates a shed-mode soak actually shed; 0 disables)",
        )

        traffic = parser.add_argument_group(
            "traffic", "what request stream to generate"
        )
        traffic.add_argument(
            "--traffic",
            choices=registry.available("traffic"),
            default=None,
            help="registered traffic model generating the request stream "
                 "(default: dataset frames on a seeded Poisson schedule)",
        )
        traffic.add_argument(
            "--rate-hz", type=float, default=100.0,
            help="mean arrival rate of the open-loop traffic "
                 "(0 = submit everything at once)",
        )
        traffic.add_argument(
            "--traffic-raw-points", type=positive_int, default=400,
            help="raw cloud size of model-generated frames (default 400)",
        )
        traffic.add_argument(
            "--traffic-param", type=_parse_traffic_param, action="append",
            default=[], metavar="KEY=VALUE",
            help="model-specific parameter, repeatable "
                 "(e.g. --traffic-param burst_size=8)",
        )
        traffic.add_argument(
            "--traffic-class-weights", default=None,
            help="per-class draw weights: either comma-separated floats "
                 "parallel to --classes, or name=weight pairs "
                 "(e.g. high=0.3,low=0.7; default uniform)",
        )

        policy = parser.add_argument_group(
            "policy", "serving policy: priority classes, shedding, limits"
        )
        policy.add_argument(
            "--classes", type=parse_class_spec, action="append", default=[],
            metavar="NAME:PRIO[:SLO_MS][:preempt]",
            help="priority class spec, repeatable "
                 "(e.g. --classes high:10:50:preempt --classes low:0)",
        )
        policy.add_argument(
            "--default-class", default=None,
            help="class for unlabelled requests "
                 "(default: the lowest-priority class)",
        )
        policy.add_argument(
            "--admission", choices=ADMISSION_MODES, default="reject",
            help="over-capacity behaviour: 'reject' raises QueueFull, "
                 "'shed' resolves lowest-priority work with LoadShed",
        )
        policy.add_argument(
            "--max-backlog", type=positive_int, default=None,
            help="shed threshold on admitted-but-unfinished requests "
                 "(default: the queue capacity)",
        )
        policy.add_argument(
            "--rate-limit-hz", type=positive_float, default=None,
            help="per-shape-key token-bucket refill rate (default: off)",
        )
        policy.add_argument(
            "--rate-limit-burst", type=positive_int, default=8,
            help="token-bucket capacity (default 8)",
        )
        policy.add_argument(
            "--adaptive-max-wait", action="store_true",
            help="tune the micro-batch deadline trigger to the observed "
                 "arrival rate (never above --max-wait-ms)",
        )
        policy.add_argument(
            "--min-wait-ms", type=positive_float, default=0.5,
            help="floor of the adaptive wait (default 0.5)",
        )

        execution = parser.add_argument_group(
            "execution", "workers, shards, and micro-batch triggers"
        )
        execution.add_argument(
            "--workers", type=positive_int, default=2,
            help="warm-session workers per server/shard (default 2)",
        )
        execution.add_argument(
            "--execution", choices=("thread", "process"), default="thread",
            help="run workers as threads or as fork-spawned processes with "
                 "shared-memory batch transport (default thread)",
        )
        execution.add_argument(
            "--shards", type=positive_int, default=1,
            help="consistent-hash shard count; >1 routes requests across N "
                 "in-process FrameServer shards (default 1)",
        )
        execution.add_argument(
            "--sampler", choices=registry.available("sampler"), default="ois"
        )
        execution.add_argument(
            "--accelerator", choices=registry.available("accelerator"),
            default="hgpcn",
        )
        execution.add_argument(
            "--backend",
            choices=registry.available("backend"),
            default=None,
            help="compute backend for every serving session -- workers and "
                 "the sequential bit-identity reference alike (default: "
                 "session default -- REPRO_BACKEND env or numpy)",
        )
        execution.add_argument(
            "--max-batch", type=positive_int, default=8,
            help="micro-batch size trigger (default 8)",
        )
        execution.add_argument(
            "--max-wait-ms", type=float, default=5.0,
            help="micro-batch deadline trigger in ms (default 5)",
        )
        execution.add_argument(
            "--queue-capacity", type=nonnegative_int, default=0,
            help="admission queue bound (0 = sized to the request count, "
                 "i.e. no backpressure during the soak)",
        )
        execution.add_argument(
            "--batch-rows-budget", type=nonnegative_int, default=0,
            help="stacked-rows cap per dispatch (0 = session default)",
        )
        execution.add_argument(
            "--preprocess-workers", type=positive_int, default=None,
            help="intra-batch worker threads inside each serving worker's "
                 "engine stage tails (default: REPRO_PREPROCESS_WORKERS "
                 "env, else serial)",
        )

        chaos = parser.add_argument_group("chaos", "seeded fault injection")
        chaos.add_argument(
            "--chaos", action="store_true",
            help="run the soak under a seeded fault plan (kill one worker "
                 "mid-run, slow another) and gate on full recovery; "
                 "requires --execution process",
        )
        chaos.add_argument(
            "--chaos-kill-after", type=nonnegative_int, default=2,
            help="kill worker 0 after it has started this many batches "
                 "(default 2)",
        )
        chaos.add_argument(
            "--chaos-slow-ms", type=positive_float, default=25.0,
            help="injected latency per batch on the slow worker (default 25)",
        )

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "ServeConfig":
        weights: Optional[Tuple[float, ...]] = None
        if args.traffic_class_weights:
            entries = args.traffic_class_weights.split(",")
            if any("=" in entry for entry in entries):
                # name=weight form: reorder to match the --classes order.
                by_name = {}
                for entry in entries:
                    name, _, value = entry.partition("=")
                    by_name[name.strip()] = float(value)
                class_names = [spec.name for spec in args.classes]
                unknown = sorted(set(by_name) - set(class_names))
                if unknown:
                    raise SystemExit(
                        f"error: --traffic-class-weights names {unknown} "
                        f"do not match --classes {class_names}"
                    )
                weights = tuple(by_name.get(n, 0.0) for n in class_names)
            else:
                weights = tuple(float(w) for w in entries)
        return cls(
            dataset=args.dataset,
            scale=args.scale,
            samples=args.samples,
            neighbors=args.neighbors,
            seed=args.seed,
            frames=args.frames,
            verify=args.verify,
            metrics_out=args.metrics_out,
            p99_budget_ms=args.p99_budget_ms,
            request_timeout=args.request_timeout,
            min_load_sheds=args.min_load_sheds,
            traffic=TrafficConfig(
                model=args.traffic,
                rate_hz=args.rate_hz,
                raw_points=args.traffic_raw_points,
                class_weights=weights,
                params=dict(args.traffic_param),
            ),
            policy=PolicyConfig(
                classes=tuple(args.classes),
                default_class=args.default_class,
                admission=args.admission,
                max_backlog=args.max_backlog,
                rate_limit_hz=args.rate_limit_hz,
                rate_limit_burst=args.rate_limit_burst,
                adaptive_max_wait=args.adaptive_max_wait,
                min_wait_ms=args.min_wait_ms,
            ),
            execution=ExecutionConfig(
                workers=args.workers,
                execution=args.execution,
                shards=args.shards,
                max_batch=args.max_batch,
                max_wait_ms=args.max_wait_ms,
                queue_capacity=args.queue_capacity,
                batch_rows_budget=args.batch_rows_budget,
                sampler=args.sampler,
                accelerator=args.accelerator,
                backend=args.backend,
                preprocess_workers=args.preprocess_workers,
            ),
            chaos=ChaosConfig(
                enabled=args.chaos,
                kill_after=args.chaos_kill_after,
                slow_ms=args.chaos_slow_ms,
            ),
        )

    # -- builders ---------------------------------------------------------
    def hgpcn_config(self) -> HgPCNConfig:
        return HgPCNConfig(
            preprocessing=PreprocessingConfig(
                num_samples=self.samples, seed=self.seed
            ),
            inference=InferenceEngineConfig(
                num_centroids=max(8, self.samples // 4),
                neighbors_per_centroid=self.neighbors,
                seed=self.seed,
            ),
        )

    def session_options(self) -> Dict[str, Any]:
        """Session kwargs shared by every worker *and* the sequential
        bit-identity reference (cache-less so outputs never depend on
        scheduling)."""
        options: Dict[str, Any] = dict(
            config=self.hgpcn_config(),
            task=DATASET_TASKS[self.dataset],
            sampler=self.execution.sampler,
            accelerator=self.execution.accelerator,
            response_cache_size=0,
            backend=self.execution.backend,
            preprocess_workers=self.execution.preprocess_workers,
        )
        if self.execution.batch_rows_budget:
            options["batch_rows_budget"] = self.execution.batch_rows_budget
        return options

    def build_policy(self) -> Optional[ServingPolicy]:
        return self.policy.build()

    def build_faults(self) -> Optional[FaultPlan]:
        return self.chaos.build(self.seed, self.execution.workers)

    def build_traffic_items(self) -> List[TrafficItem]:
        """The request stream: traffic-model items, or dataset frames on a
        seeded Poisson schedule (the legacy path) when no model is set."""
        built_policy = self.build_policy()
        class_names: Tuple[str, ...] = ()
        if built_policy is not None and self.traffic.model is not None:
            class_names = tuple(
                cls.name for cls in built_policy.classes
            )
        model = self.traffic.build(
            frames=self.frames, seed=self.seed, class_names=class_names
        )
        if model is not None:
            return model.items()
        from repro.session import FrameRequest

        source = registry.create(
            "dataset",
            self.dataset,
            num_frames=self.frames,
            seed=self.seed,
            scale=self.scale,
        )
        requests = [
            FrameRequest.from_frame(source.generate_frame(i))
            for i in range(self.frames)
        ]
        rng = np.random.default_rng(self.seed)
        if self.traffic.rate_hz > 0:
            arrivals = np.cumsum(
                rng.exponential(1.0 / self.traffic.rate_hz, size=self.frames)
            )
        else:
            arrivals = np.zeros(self.frames)
        return [
            TrafficItem(request=request, arrival=float(arrival))
            for request, arrival in zip(requests, arrivals)
        ]

    def endpoint_options(
        self, num_requests: int, faults: Optional[FaultPlan]
    ) -> Dict[str, Any]:
        """Constructor kwargs for ``FrameServer`` (or, with ``num_shards``
        and ``name`` added, ``ShardRouter``)."""
        from repro.session import Session

        session_options = self.session_options()
        return dict(
            session_factory=lambda: Session(**session_options),
            num_workers=self.execution.workers,
            execution=self.execution.execution,
            max_batch_size=self.execution.max_batch,
            max_wait_seconds=self.execution.max_wait_ms / 1e3,
            queue_capacity=self.execution.queue_capacity or num_requests,
            faults=faults,
            policy=self.build_policy(),
        )

    def describe(self) -> Dict[str, Any]:
        policy = self.build_policy()
        return {
            "dataset": self.dataset,
            "frames": self.frames,
            "seed": self.seed,
            "traffic": (
                {"model": self.traffic.model, "rate_hz": self.traffic.rate_hz}
            ),
            "policy": policy.describe() if policy is not None else None,
            "workers": self.execution.workers,
            "execution": self.execution.execution,
            "shards": self.execution.shards,
        }
