"""Pluggable, seeded traffic models for the serving soaks and benchmarks.

A traffic model turns ``(frames, rate_hz, seed, ...)`` into a deterministic
list of :class:`TrafficItem` -- a :class:`~repro.session.FrameRequest`, its
open-loop arrival offset in seconds, and an optional serving-policy class
name.  Models are registered under the ``"traffic"`` registry kind, so the
``serve`` CLI and the benchmark harness address them by string exactly like
samplers and backends::

    model = registry.create("traffic", "mixed", frames=64, rate_hz=200, seed=0)
    for item in model.items():
        ...  # submit item.request at t0 + item.arrival

Determinism contract: a model's output is a pure function of its
constructor arguments.  Arrival gaps, class draws, and frame geometry each
consume *independent* seeded generators (``seed``, ``seed + 1``, and
``seed + 2 + index`` respectively), so adding a class mix never perturbs
the arrival schedule and vice versa -- the bit-identity gate compares
served responses against a sequential run over the *same* request list,
which therefore never depends on policy configuration.

The built-in models cover the arrival shapes the serving roadmap calls out:

============  ==========================================================
``poisson``   memoryless gaps at ``rate_hz`` (the legacy soak traffic)
``burst``     trains of back-to-back arrivals separated by quiet gaps
``lognormal`` heavy-tailed gaps with unit-mean lognormal multiplier
``pareto``    power-law gaps (classical Pareto, ``alpha > 1``)
``diurnal``   sinusoidally-modulated Poisson (thinned at peak rate)
``mixed``     Poisson arrivals over two frame shapes + priority classes
``sequence``  KITTI-like fixed-cadence replay with temporal correlation
============  ==========================================================

All models emit CAD-style synthetic frames
(:func:`~repro.datasets.synthetic.sample_cad_shape`); ``mixed`` adds a
second, smaller raw size (below ``num_samples``) so its stream exercises
two warm-state shape keys, and ``sequence`` drifts one base cloud frame to
frame so consecutive requests are correlated the way a real sensor
sequence is.  Task mixing is out of scope: a serving session is built for
one task, so one server serves one task (mix tasks across shards instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro import registry
from repro.datasets.synthetic import sample_cad_shape
from repro.geometry.pointcloud import PointCloud
from repro.session import FrameRequest

#: Shapes cycled by the frame generators (distinct geometry per frame).
_SHAPES = ("sphere", "box", "cylinder")


@dataclass(frozen=True)
class TrafficItem:
    """One request of a generated traffic stream."""

    request: FrameRequest
    #: Open-loop arrival offset from the stream start, in seconds.
    arrival: float
    #: Serving-policy class to submit under (``None`` -> server default).
    class_name: Optional[str] = None


class TrafficModel:
    """Base class: seeded arrivals + seeded frames + seeded class draws.

    Subclasses implement :meth:`_gaps` (inter-arrival seconds, length
    ``frames``; the first gap is the offset of the first arrival) and may
    override :meth:`_cloud` to change frame geometry.

    Parameters shared by every model: ``frames`` (stream length),
    ``rate_hz`` (mean arrival rate; ``0`` submits everything at once),
    ``seed``, ``raw_points`` (raw cloud size), ``class_names`` /
    ``class_weights`` (optional per-item class draw).
    """

    name = "base"

    def __init__(
        self,
        frames: int = 64,
        rate_hz: float = 100.0,
        seed: int = 0,
        raw_points: int = 400,
        class_names: Optional[Sequence[str]] = None,
        class_weights: Optional[Sequence[float]] = None,
    ):
        if frames < 1:
            raise ValueError(f"frames must be >= 1, got {frames}")
        if rate_hz < 0:
            raise ValueError(f"rate_hz must be >= 0, got {rate_hz}")
        if raw_points < 1:
            raise ValueError(f"raw_points must be >= 1, got {raw_points}")
        self.frames = int(frames)
        self.rate_hz = float(rate_hz)
        self.seed = int(seed)
        self.raw_points = int(raw_points)
        self.class_names = tuple(class_names) if class_names else ()
        if self.class_names:
            if class_weights is None:
                weights = np.ones(len(self.class_names))
            else:
                weights = np.asarray(list(class_weights), dtype=np.float64)
                if len(weights) != len(self.class_names):
                    raise ValueError(
                        f"{len(self.class_names)} class names but "
                        f"{len(weights)} weights"
                    )
                if not np.all(weights > 0):
                    raise ValueError("class weights must be > 0")
            self.class_probs = weights / weights.sum()
        else:
            self.class_probs = None

    # -- the pieces subclasses override ---------------------------------
    def _gaps(self, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def _cloud(self, index: int) -> PointCloud:
        cloud = sample_cad_shape(
            num_points=self.raw_points,
            shape=_SHAPES[index % len(_SHAPES)],
            non_uniformity=0.2,
            seed=self.seed + 2 + index,
        )
        cloud.frame_id = f"traffic.{self.name}.{index}"
        return cloud

    # -- generation ------------------------------------------------------
    def arrivals(self) -> np.ndarray:
        """Cumulative arrival offsets (seconds, length ``frames``)."""
        if self.rate_hz == 0:
            return np.zeros(self.frames)
        gaps = np.asarray(self._gaps(np.random.default_rng(self.seed)))
        if gaps.shape != (self.frames,):
            raise AssertionError(
                f"{type(self).__name__}._gaps returned shape {gaps.shape}, "
                f"expected ({self.frames},)"
            )
        return np.cumsum(np.maximum(gaps, 0.0))

    def _classes(self) -> List[Optional[str]]:
        if self.class_probs is None:
            return [None] * self.frames
        rng = np.random.default_rng(self.seed + 1)
        draws = rng.choice(
            len(self.class_names), size=self.frames, p=self.class_probs
        )
        return [self.class_names[int(d)] for d in draws]

    def items(self) -> List[TrafficItem]:
        """The full deterministic stream, in arrival order."""
        arrivals = self.arrivals()
        classes = self._classes()
        items = []
        for i in range(self.frames):
            cloud = self._cloud(i)
            items.append(
                TrafficItem(
                    request=FrameRequest(
                        cloud=cloud,
                        frame_id=cloud.frame_id or f"traffic.{self.name}.{i}",
                        timestamp=cloud.timestamp,
                    ),
                    arrival=float(arrivals[i]),
                    class_name=classes[i],
                )
            )
        return items

    def describe(self) -> Dict[str, Any]:
        return {
            "model": self.name,
            "frames": self.frames,
            "rate_hz": self.rate_hz,
            "seed": self.seed,
            "raw_points": self.raw_points,
            "classes": list(self.class_names) or None,
        }


@registry.register("traffic", "poisson")
class PoissonTraffic(TrafficModel):
    """Memoryless arrivals at ``rate_hz`` -- the legacy soak traffic."""

    name = "poisson"

    def _gaps(self, rng: np.random.Generator) -> np.ndarray:
        return rng.exponential(1.0 / self.rate_hz, size=self.frames)


@registry.register("traffic", "burst")
class BurstTraffic(TrafficModel):
    """Trains of ``burst_size`` near-simultaneous arrivals.

    Within a train, gaps are ``1 / intra_burst_hz``; trains start
    ``burst_size / rate_hz`` apart on average (exponential), so the
    *mean* rate stays ``rate_hz`` while the instantaneous rate during a
    train is ``intra_burst_hz`` -- the shape that exercises SLO shedding.
    """

    name = "burst"

    def __init__(
        self,
        frames: int = 64,
        rate_hz: float = 100.0,
        seed: int = 0,
        raw_points: int = 400,
        class_names: Optional[Sequence[str]] = None,
        class_weights: Optional[Sequence[float]] = None,
        burst_size: int = 8,
        intra_burst_hz: float = 2000.0,
    ):
        super().__init__(
            frames, rate_hz, seed, raw_points, class_names, class_weights
        )
        if burst_size < 1:
            raise ValueError(f"burst_size must be >= 1, got {burst_size}")
        if intra_burst_hz <= 0:
            raise ValueError(
                f"intra_burst_hz must be > 0, got {intra_burst_hz}"
            )
        self.burst_size = int(burst_size)
        self.intra_burst_hz = float(intra_burst_hz)

    def _gaps(self, rng: np.random.Generator) -> np.ndarray:
        gaps = np.empty(self.frames)
        for i in range(self.frames):
            if i % self.burst_size == 0:
                gaps[i] = rng.exponential(self.burst_size / self.rate_hz)
            else:
                gaps[i] = 1.0 / self.intra_burst_hz
        return gaps

    def describe(self) -> Dict[str, Any]:
        return super().describe() | {
            "burst_size": self.burst_size,
            "intra_burst_hz": self.intra_burst_hz,
        }


@registry.register("traffic", "lognormal")
class LognormalTraffic(TrafficModel):
    """Heavy-tailed gaps: lognormal with mean ``1 / rate_hz``.

    ``mu = ln(1/rate) - sigma^2 / 2`` keeps the mean exactly on target
    while ``sigma`` widens the tail (``sigma=0`` degenerates to a fixed
    cadence).
    """

    name = "lognormal"

    def __init__(
        self,
        frames: int = 64,
        rate_hz: float = 100.0,
        seed: int = 0,
        raw_points: int = 400,
        class_names: Optional[Sequence[str]] = None,
        class_weights: Optional[Sequence[float]] = None,
        sigma: float = 1.0,
    ):
        super().__init__(
            frames, rate_hz, seed, raw_points, class_names, class_weights
        )
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.sigma = float(sigma)

    def _gaps(self, rng: np.random.Generator) -> np.ndarray:
        mu = np.log(1.0 / self.rate_hz) - self.sigma**2 / 2.0
        return rng.lognormal(mean=mu, sigma=self.sigma, size=self.frames)

    def describe(self) -> Dict[str, Any]:
        return super().describe() | {"sigma": self.sigma}


@registry.register("traffic", "pareto")
class ParetoTraffic(TrafficModel):
    """Power-law gaps: classical Pareto with mean ``1 / rate_hz``.

    Minimum gap ``m = (1/rate) * (alpha - 1) / alpha`` puts the mean of
    the Pareto(``alpha``, ``m``) distribution exactly at the target;
    ``alpha`` close to 1 makes the tail (and the bursts between long
    silences) extreme.  Requires ``alpha > 1`` for the mean to exist.
    """

    name = "pareto"

    def __init__(
        self,
        frames: int = 64,
        rate_hz: float = 100.0,
        seed: int = 0,
        raw_points: int = 400,
        class_names: Optional[Sequence[str]] = None,
        class_weights: Optional[Sequence[float]] = None,
        alpha: float = 1.5,
    ):
        super().__init__(
            frames, rate_hz, seed, raw_points, class_names, class_weights
        )
        if alpha <= 1:
            raise ValueError(
                f"alpha must be > 1 for a finite mean gap, got {alpha}"
            )
        self.alpha = float(alpha)

    def _gaps(self, rng: np.random.Generator) -> np.ndarray:
        minimum = (1.0 / self.rate_hz) * (self.alpha - 1.0) / self.alpha
        # numpy's pareto() samples the Lomax form on [0, inf); 1 + that is
        # the classical Pareto on [1, inf), scaled to the minimum gap.
        return minimum * (1.0 + rng.pareto(self.alpha, size=self.frames))

    def describe(self) -> Dict[str, Any]:
        return super().describe() | {"alpha": self.alpha}


@registry.register("traffic", "diurnal")
class DiurnalTraffic(TrafficModel):
    """Sinusoidally-modulated Poisson: a compressed day/night cycle.

    Candidate arrivals are drawn at the peak rate ``rate_hz`` and thinned
    with acceptance probability ``rate(t) / rate_hz`` where ``rate(t)``
    swings between ``trough_fraction * rate_hz`` and ``rate_hz`` over
    ``period_seconds`` (thinning keeps the process exactly
    inhomogeneous-Poisson).  Exactly ``frames`` accepted arrivals are
    kept, so the stream length never depends on the thinning luck.
    """

    name = "diurnal"

    def __init__(
        self,
        frames: int = 64,
        rate_hz: float = 100.0,
        seed: int = 0,
        raw_points: int = 400,
        class_names: Optional[Sequence[str]] = None,
        class_weights: Optional[Sequence[float]] = None,
        period_seconds: float = 2.0,
        trough_fraction: float = 0.1,
    ):
        super().__init__(
            frames, rate_hz, seed, raw_points, class_names, class_weights
        )
        if period_seconds <= 0:
            raise ValueError(
                f"period_seconds must be > 0, got {period_seconds}"
            )
        if not 0.0 <= trough_fraction <= 1.0:
            raise ValueError(
                f"trough_fraction must be in [0, 1], got {trough_fraction}"
            )
        self.period_seconds = float(period_seconds)
        self.trough_fraction = float(trough_fraction)

    def _gaps(self, rng: np.random.Generator) -> np.ndarray:
        arrivals = np.empty(self.frames)
        t = 0.0
        accepted = 0
        while accepted < self.frames:
            t += rng.exponential(1.0 / self.rate_hz)
            phase = 0.5 * (
                1.0 - np.cos(2.0 * np.pi * t / self.period_seconds)
            )
            intensity = self.trough_fraction + (
                1.0 - self.trough_fraction
            ) * phase
            if rng.random() <= intensity:
                arrivals[accepted] = t
                accepted += 1
        return np.diff(arrivals, prepend=0.0)

    def describe(self) -> Dict[str, Any]:
        return super().describe() | {
            "period_seconds": self.period_seconds,
            "trough_fraction": self.trough_fraction,
        }


@registry.register("traffic", "mixed")
class MixedTraffic(TrafficModel):
    """Poisson arrivals over two frame shapes (two warm-state shape keys).

    A ``small_share`` fraction of frames carries ``small_points`` raw
    points instead of ``raw_points``; keep ``small_points`` below the
    session's ``num_samples`` so the down-sampled size -- and hence the
    warm-state shape key -- genuinely differs and the scheduler runs two
    concurrent groups.  Combine with ``class_names`` for the two-priority
    mixed soak.
    """

    name = "mixed"

    def __init__(
        self,
        frames: int = 64,
        rate_hz: float = 100.0,
        seed: int = 0,
        raw_points: int = 400,
        class_names: Optional[Sequence[str]] = None,
        class_weights: Optional[Sequence[float]] = None,
        small_points: int = 48,
        small_share: float = 0.5,
    ):
        super().__init__(
            frames, rate_hz, seed, raw_points, class_names, class_weights
        )
        if small_points < 1:
            raise ValueError(f"small_points must be >= 1, got {small_points}")
        if not 0.0 <= small_share <= 1.0:
            raise ValueError(
                f"small_share must be in [0, 1], got {small_share}"
            )
        self.small_points = int(small_points)
        self.small_share = float(small_share)

    def _gaps(self, rng: np.random.Generator) -> np.ndarray:
        return rng.exponential(1.0 / self.rate_hz, size=self.frames)

    def _is_small(self, index: int) -> bool:
        # Deterministic per-index draw, independent of arrivals/classes.
        return bool(
            np.random.default_rng(self.seed + 2 + index).random()
            < self.small_share
        )

    def _cloud(self, index: int) -> PointCloud:
        small = self._is_small(index)
        cloud = sample_cad_shape(
            num_points=self.small_points if small else self.raw_points,
            shape=_SHAPES[index % len(_SHAPES)],
            non_uniformity=0.2,
            seed=self.seed + 2 + index,
        )
        size = "small" if small else "large"
        cloud.frame_id = f"traffic.mixed.{size}.{index}"
        return cloud

    def describe(self) -> Dict[str, Any]:
        return super().describe() | {
            "small_points": self.small_points,
            "small_share": self.small_share,
        }


@registry.register("traffic", "sequence")
class SequenceTraffic(TrafficModel):
    """KITTI-like replay: fixed cadence, temporally-correlated frames.

    Arrivals tick at exactly ``1 / rate_hz`` (a sensor's frame period)
    plus a small seeded jitter.  Frames are one base cloud translated by a
    cumulative random-walk drift (ego motion) with per-frame point jitter,
    so consecutive requests are *correlated* -- same raw size, same shape
    key, slightly moved geometry -- the way a replayed sequence trace is.
    """

    name = "sequence"

    def __init__(
        self,
        frames: int = 64,
        rate_hz: float = 100.0,
        seed: int = 0,
        raw_points: int = 400,
        class_names: Optional[Sequence[str]] = None,
        class_weights: Optional[Sequence[float]] = None,
        drift_per_frame: float = 0.02,
        point_jitter: float = 0.002,
        cadence_jitter: float = 0.05,
    ):
        super().__init__(
            frames, rate_hz, seed, raw_points, class_names, class_weights
        )
        if drift_per_frame < 0:
            raise ValueError(
                f"drift_per_frame must be >= 0, got {drift_per_frame}"
            )
        if point_jitter < 0:
            raise ValueError(f"point_jitter must be >= 0, got {point_jitter}")
        if not 0.0 <= cadence_jitter < 1.0:
            raise ValueError(
                f"cadence_jitter must be in [0, 1), got {cadence_jitter}"
            )
        self.drift_per_frame = float(drift_per_frame)
        self.point_jitter = float(point_jitter)
        self.cadence_jitter = float(cadence_jitter)
        self._base = sample_cad_shape(
            num_points=self.raw_points,
            shape="sphere",
            non_uniformity=0.2,
            seed=self.seed + 2,
        )

    def _gaps(self, rng: np.random.Generator) -> np.ndarray:
        period = 1.0 / self.rate_hz
        jitter = rng.uniform(
            -self.cadence_jitter, self.cadence_jitter, size=self.frames
        )
        gaps = period * (1.0 + jitter)
        gaps[0] = 0.0  # the first frame of a replay starts immediately
        return gaps

    def _drift(self, index: int) -> np.ndarray:
        # Cumulative random walk: frame i's offset is the sum of i steps,
        # each drawn from its own seeded stream so any frame is computable
        # without generating its predecessors.
        offset = np.zeros(3)
        for step in range(index):
            offset += np.random.default_rng(
                self.seed + 1000 + step
            ).normal(0.0, self.drift_per_frame, size=3)
        return offset

    def _cloud(self, index: int) -> PointCloud:
        rng = np.random.default_rng(self.seed + 2 + index)
        points = self._base.points + self._drift(index)
        if self.point_jitter > 0:
            points = points + rng.normal(
                0.0, self.point_jitter, size=points.shape
            )
        return PointCloud(
            points=points,
            frame_id=f"traffic.sequence.{index}",
            timestamp=index / self.rate_hz if self.rate_hz else None,
        )

    def describe(self) -> Dict[str, Any]:
        return super().describe() | {
            "drift_per_frame": self.drift_per_frame,
            "point_jitter": self.point_jitter,
            "cadence_jitter": self.cadence_jitter,
        }
