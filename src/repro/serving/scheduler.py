"""Shape-grouped micro-batch formation with size/deadline dispatch triggers.

The scheduler holds the requests the admission queue has handed over and
groups them by their warm-state shape key -- ``(task, sampled_size,
feature_channels)``, the same key :meth:`repro.session.Session.shape_key`
uses -- because only same-keyed frames can ride one
:class:`~repro.core.framebatch.FrameBatch` through a warm session.

A group dispatches as a :class:`MicroBatch` when the first of three
triggers fires:

* **size** -- the group reached its effective batch size: the configured
  ``max_batch_size``, further capped by ``batch_rows_budget // sampled_size``
  so the stacked network operand stays cache-sized (the same budget
  :class:`~repro.session.Session` applies when sub-batching; capping here
  keeps the scheduler from forming batches the session would immediately
  split).
* **deadline** -- the group's *oldest* request has waited its effective
  wait since admission.  This bounds the latency a lonely shape pays for
  batching: a request never waits more than the wait bound for companions
  that may not come.  The bound is ``max_wait_seconds``, optionally capped
  further per :class:`~repro.serving.policy.PriorityClass`
  (``max_wait_seconds`` on the class) and -- under a policy with
  ``adaptive_max_wait`` -- tuned down to the observed arrival rate
  (:class:`~repro.serving.policy.AdaptiveMaxWait` on the injected clock).
* **priority** -- a request of a ``preempt`` class arrived: its shape
  group dispatches immediately instead of waiting for companions, carrying
  the highest-priority members first.

With a serving policy attached, groups are visited highest-priority first
(a high-priority arrival jumps the grouping order) and an over-full
group's members are *selected* by descending priority -- but whichever
entries are selected leave in admission order within the batch, so
per-batch future resolution stays monotonic in sequence numbers (the
``futures_monotonic`` gate holds under every policy).  :meth:`drain`
flushes every pending group (trigger ``"drain"``) for graceful shutdown.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.serving.metrics import Clock
from repro.serving.policy import PriorityClass, ServingPolicy
from repro.serving.queue import QueuedRequest
from repro.session import FrameRequest

#: Maps a request to its warm-state shape key ``(task, sampled, channels)``.
ShapeKey = Callable[[FrameRequest], Tuple[str, int, int]]


@dataclass
class MicroBatch:
    """One shape-homogeneous batch ready for a worker."""

    key: Tuple[str, int, int]
    entries: List[QueuedRequest]
    #: Clock reading when the batch was formed.
    formed_at: float
    #: Which trigger formed it: "size", "deadline", "priority", or "drain".
    trigger: str
    #: Formation order (0-based, per scheduler).
    batch_id: int = 0

    def __len__(self) -> int:
        return len(self.entries)


class MicroBatchScheduler:
    """Groups pending requests by shape key and decides when to dispatch."""

    def __init__(
        self,
        shape_key: ShapeKey,
        max_batch_size: int = 8,
        max_wait_seconds: float = 0.005,
        batch_rows_budget: Optional[int] = None,
        clock: Clock = time.monotonic,
        policy: Optional[ServingPolicy] = None,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_seconds < 0:
            raise ValueError(
                f"max_wait_seconds must be >= 0, got {max_wait_seconds}"
            )
        if batch_rows_budget is not None and batch_rows_budget < 1:
            raise ValueError(
                f"batch_rows_budget must be >= 1, got {batch_rows_budget}"
            )
        self.shape_key = shape_key
        self.max_batch_size = int(max_batch_size)
        self.max_wait_seconds = float(max_wait_seconds)
        self.batch_rows_budget = batch_rows_budget
        self.clock = clock
        self.policy = policy
        self._classes: Dict[str, PriorityClass] = (
            policy.class_map if policy is not None else {}
        )
        self._adaptive = (
            policy.make_adaptive_wait(self.max_wait_seconds, self.max_batch_size)
            if policy is not None
            else None
        )
        self._lock = threading.Lock()
        #: Pending entries per shape key, in admission order.
        self._pending: Dict[Tuple[str, int, int], List[QueuedRequest]] = {}
        #: Keys holding a freshly-arrived entry of a ``preempt`` class.
        self._urgent: Set[Tuple[str, int, int]] = set()
        self._batch_counter = 0

    # ------------------------------------------------------------------
    def effective_batch_size(self, key: Tuple[str, int, int]) -> int:
        """The size trigger for ``key``: max batch size under the rows budget."""
        limit = self.max_batch_size
        if self.batch_rows_budget is not None:
            rows = max(1, int(key[1]))
            limit = min(limit, max(1, self.batch_rows_budget // rows))
        return limit

    @property
    def pending_count(self) -> int:
        with self._lock:
            return sum(len(entries) for entries in self._pending.values())

    def pending_keys(self) -> List[Tuple[str, int, int]]:
        with self._lock:
            return [key for key, entries in self._pending.items() if entries]

    def current_max_wait(self) -> float:
        """The deadline-trigger wait in force right now (pre per-class caps)."""
        if self._adaptive is not None:
            return self._adaptive.current()
        return self.max_wait_seconds

    def _group_wait(self, entries: List[QueuedRequest]) -> float:
        """Effective wait bound for a group: adaptive base, capped by the
        tightest per-class ``max_wait_seconds`` among its members."""
        wait = self.current_max_wait()
        for entry in entries:
            cls = self._classes.get(entry.class_name)
            if cls is not None and cls.max_wait_seconds is not None:
                wait = min(wait, cls.max_wait_seconds)
        return wait

    # ------------------------------------------------------------------
    def add(self, entry: QueuedRequest) -> None:
        """Accept one entry from the admission queue into its shape group."""
        key = self.shape_key(entry.request)
        if self._adaptive is not None:
            self._adaptive.observe(entry.enqueued_at)
        cls = self._classes.get(entry.class_name)
        with self._lock:
            self._pending.setdefault(key, []).append(entry)
            if cls is not None and cls.preempt:
                self._urgent.add(key)

    def next_deadline(self) -> Optional[float]:
        """Earliest clock reading at which a deadline trigger fires."""
        with self._lock:
            deadlines = [
                entries[0].enqueued_at + self._group_wait(entries)
                for entries in self._pending.values()
                if entries
            ]
        return min(deadlines) if deadlines else None

    def next_expiry(self) -> Optional[float]:
        """Earliest request deadline among pending entries (TTL sheds)."""
        with self._lock:
            deadlines = [
                entry.deadline
                for entries in self._pending.values()
                for entry in entries
                if entry.deadline is not None
            ]
        return min(deadlines) if deadlines else None

    def shed_expired(self, now: Optional[float] = None) -> List[QueuedRequest]:
        """Remove expired entries from every pending group (pre-dispatch).

        Returns the shed entries; the caller resolves their futures with
        ``DeadlineExceeded``.  Runs before :meth:`ready`/:meth:`drain` so an
        expired request is never dispatched -- and never silently dropped.
        """
        if now is None:
            now = self.clock()
        shed: List[QueuedRequest] = []
        with self._lock:
            for key in list(self._pending):
                entries = self._pending[key]
                kept = [e for e in entries if not e.expired(now)]
                if len(kept) == len(entries):
                    continue
                shed.extend(e for e in entries if e.expired(now))
                if kept:
                    self._pending[key] = kept
                else:
                    del self._pending[key]
                    self._urgent.discard(key)
        return shed

    def steal_lowest(self, below_priority: int) -> Optional[QueuedRequest]:
        """Remove and return the best shed victim under ``below_priority``.

        SLO-aware admission support (same contract as
        ``AdmissionQueue.steal_lowest``): the lowest-priority pending
        entry, youngest first among ties.  ``None`` when nothing pending
        ranks strictly below ``below_priority``.
        """
        with self._lock:
            victim: Optional[QueuedRequest] = None
            victim_key: Optional[Tuple[str, int, int]] = None
            for key, entries in self._pending.items():
                for entry in entries:
                    if entry.priority >= below_priority:
                        continue
                    if (
                        victim is None
                        or entry.priority < victim.priority
                        or (
                            entry.priority == victim.priority
                            and entry.sequence > victim.sequence
                        )
                    ):
                        victim, victim_key = entry, key
            if victim is not None and victim_key is not None:
                entries = self._pending[victim_key]
                # Remove by identity: dataclass __eq__ would compare the
                # numpy payloads element-wise.
                self._pending[victim_key] = [
                    e for e in entries if e is not victim
                ]
                entries = self._pending[victim_key]
                if not entries:
                    del self._pending[victim_key]
                    self._urgent.discard(victim_key)
            return victim

    @staticmethod
    def _select(
        entries: List[QueuedRequest], limit: int
    ) -> Tuple[List[QueuedRequest], List[QueuedRequest]]:
        """Split ``entries`` into (batch members, remainder).

        Members are chosen by descending priority (admission order among
        equals) but *returned in admission order*: priority decides who
        rides the batch, sequence order decides their slots, so per-batch
        future resolution stays monotonic.  The all-equal fast path is the
        pre-policy FIFO behaviour, bit for bit.
        """
        if len(entries) <= limit:
            return list(entries), []
        first_priority = entries[0].priority
        if all(e.priority == first_priority for e in entries):
            return entries[:limit], entries[limit:]
        chosen = sorted(
            sorted(entries, key=lambda e: (-e.priority, e.sequence))[:limit],
            key=lambda e: e.sequence,
        )
        chosen_set = {id(e) for e in chosen}
        return chosen, [e for e in entries if id(e) not in chosen_set]

    def _visit_order(self) -> List[Tuple[str, int, int]]:
        """Group visit order: highest pending priority first (policy), else
        insertion order (legacy).  Caller holds the lock."""
        keys = [key for key, entries in self._pending.items() if entries]
        if self.policy is None:
            return keys
        return sorted(
            keys,
            key=lambda key: (
                -max(e.priority for e in self._pending[key]),
                min(e.sequence for e in self._pending[key]),
            ),
        )

    def ready(self, now: Optional[float] = None) -> List[MicroBatch]:
        """Pop every batch whose priority, size, or deadline trigger fired."""
        if now is None:
            now = self.clock()
        batches: List[MicroBatch] = []
        with self._lock:
            for key in self._visit_order():
                entries = self._pending[key]
                limit = self.effective_batch_size(key)
                if key in self._urgent:
                    # A preempting arrival dispatches its group now: the
                    # highest-priority members ride out immediately instead
                    # of waiting for the size trigger to fill.
                    self._urgent.discard(key)
                    chosen, entries = self._select(entries, limit)
                    batches.append(self._form(key, chosen, now, "priority"))
                    self._pending[key] = entries
                while len(entries) >= limit:
                    chosen, entries = self._select(entries, limit)
                    batches.append(self._form(key, chosen, now, "size"))
                    self._pending[key] = entries
                if entries and (
                    now - entries[0].enqueued_at >= self._group_wait(entries)
                ):
                    chosen, entries = self._select(entries, limit)
                    batches.append(self._form(key, chosen, now, "deadline"))
                    self._pending[key] = entries
                if not entries:
                    self._pending.pop(key, None)
                    self._urgent.discard(key)
        return batches

    def drain(self, now: Optional[float] = None) -> List[MicroBatch]:
        """Flush every pending group (shutdown path)."""
        if now is None:
            now = self.clock()
        batches: List[MicroBatch] = []
        with self._lock:
            for key in list(self._pending):
                entries = self._pending.pop(key)
                self._urgent.discard(key)
                limit = self.effective_batch_size(key)
                for start in range(0, len(entries), limit):
                    batches.append(
                        self._form(key, entries[start : start + limit], now, "drain")
                    )
        return batches

    def _form(
        self,
        key: Tuple[str, int, int],
        entries: List[QueuedRequest],
        now: float,
        trigger: str,
    ) -> MicroBatch:
        batch = MicroBatch(
            key=key,
            entries=list(entries),
            formed_at=now,
            trigger=trigger,
            batch_id=self._batch_counter,
        )
        self._batch_counter += 1
        return batch
