"""Shape-grouped micro-batch formation with size/deadline dispatch triggers.

The scheduler holds the requests the admission queue has handed over and
groups them by their warm-state shape key -- ``(task, sampled_size,
feature_channels)``, the same key :meth:`repro.session.Session.shape_key`
uses -- because only same-keyed frames can ride one
:class:`~repro.core.framebatch.FrameBatch` through a warm session.

A group dispatches as a :class:`MicroBatch` when the first of two triggers
fires:

* **size** -- the group reached its effective batch size: the configured
  ``max_batch_size``, further capped by ``batch_rows_budget // sampled_size``
  so the stacked network operand stays cache-sized (the same budget
  :class:`~repro.session.Session` applies when sub-batching; capping here
  keeps the scheduler from forming batches the session would immediately
  split).
* **deadline** -- the group's *oldest* request has waited ``max_wait``
  seconds since admission.  This bounds the latency a lonely shape pays for
  batching: a request never waits more than ``max_wait`` for companions
  that may not come.

Whichever trigger fires, members leave in admission order, so per-batch
future resolution stays monotonic in sequence numbers.  :meth:`drain`
flushes every pending group (trigger ``"drain"``) for graceful shutdown.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.serving.metrics import Clock
from repro.serving.queue import QueuedRequest
from repro.session import FrameRequest

#: Maps a request to its warm-state shape key ``(task, sampled, channels)``.
ShapeKey = Callable[[FrameRequest], Tuple[str, int, int]]


@dataclass
class MicroBatch:
    """One shape-homogeneous batch ready for a worker."""

    key: Tuple[str, int, int]
    entries: List[QueuedRequest]
    #: Clock reading when the batch was formed.
    formed_at: float
    #: Which trigger formed it: "size", "deadline", or "drain".
    trigger: str
    #: Formation order (0-based, per scheduler).
    batch_id: int = 0

    def __len__(self) -> int:
        return len(self.entries)


class MicroBatchScheduler:
    """Groups pending requests by shape key and decides when to dispatch."""

    def __init__(
        self,
        shape_key: ShapeKey,
        max_batch_size: int = 8,
        max_wait_seconds: float = 0.005,
        batch_rows_budget: Optional[int] = None,
        clock: Clock = time.monotonic,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_seconds < 0:
            raise ValueError(
                f"max_wait_seconds must be >= 0, got {max_wait_seconds}"
            )
        if batch_rows_budget is not None and batch_rows_budget < 1:
            raise ValueError(
                f"batch_rows_budget must be >= 1, got {batch_rows_budget}"
            )
        self.shape_key = shape_key
        self.max_batch_size = int(max_batch_size)
        self.max_wait_seconds = float(max_wait_seconds)
        self.batch_rows_budget = batch_rows_budget
        self.clock = clock
        self._lock = threading.Lock()
        #: Pending entries per shape key, in admission order.
        self._pending: Dict[Tuple[str, int, int], List[QueuedRequest]] = {}
        self._batch_counter = 0

    # ------------------------------------------------------------------
    def effective_batch_size(self, key: Tuple[str, int, int]) -> int:
        """The size trigger for ``key``: max batch size under the rows budget."""
        limit = self.max_batch_size
        if self.batch_rows_budget is not None:
            rows = max(1, int(key[1]))
            limit = min(limit, max(1, self.batch_rows_budget // rows))
        return limit

    @property
    def pending_count(self) -> int:
        with self._lock:
            return sum(len(entries) for entries in self._pending.values())

    def pending_keys(self) -> List[Tuple[str, int, int]]:
        with self._lock:
            return [key for key, entries in self._pending.items() if entries]

    # ------------------------------------------------------------------
    def add(self, entry: QueuedRequest) -> None:
        """Accept one entry from the admission queue into its shape group."""
        key = self.shape_key(entry.request)
        with self._lock:
            self._pending.setdefault(key, []).append(entry)

    def next_deadline(self) -> Optional[float]:
        """Earliest clock reading at which a deadline trigger fires."""
        with self._lock:
            oldest = [
                entries[0].enqueued_at
                for entries in self._pending.values()
                if entries
            ]
        if not oldest:
            return None
        return min(oldest) + self.max_wait_seconds

    def next_expiry(self) -> Optional[float]:
        """Earliest request deadline among pending entries (TTL sheds)."""
        with self._lock:
            deadlines = [
                entry.deadline
                for entries in self._pending.values()
                for entry in entries
                if entry.deadline is not None
            ]
        return min(deadlines) if deadlines else None

    def shed_expired(self, now: Optional[float] = None) -> List[QueuedRequest]:
        """Remove expired entries from every pending group (pre-dispatch).

        Returns the shed entries; the caller resolves their futures with
        ``DeadlineExceeded``.  Runs before :meth:`ready`/:meth:`drain` so an
        expired request is never dispatched -- and never silently dropped.
        """
        if now is None:
            now = self.clock()
        shed: List[QueuedRequest] = []
        with self._lock:
            for key in list(self._pending):
                entries = self._pending[key]
                kept = [e for e in entries if not e.expired(now)]
                if len(kept) == len(entries):
                    continue
                shed.extend(e for e in entries if e.expired(now))
                if kept:
                    self._pending[key] = kept
                else:
                    del self._pending[key]
        return shed

    def ready(self, now: Optional[float] = None) -> List[MicroBatch]:
        """Pop every batch whose size or deadline trigger has fired."""
        if now is None:
            now = self.clock()
        batches: List[MicroBatch] = []
        with self._lock:
            for key in list(self._pending):
                entries = self._pending[key]
                limit = self.effective_batch_size(key)
                while len(entries) >= limit:
                    batches.append(
                        self._form(key, entries[:limit], now, "size")
                    )
                    del entries[:limit]
                if entries and now - entries[0].enqueued_at >= self.max_wait_seconds:
                    batches.append(self._form(key, entries[:limit], now, "deadline"))
                    del entries[:limit]
                if not entries:
                    del self._pending[key]
        return batches

    def drain(self, now: Optional[float] = None) -> List[MicroBatch]:
        """Flush every pending group (shutdown path)."""
        if now is None:
            now = self.clock()
        batches: List[MicroBatch] = []
        with self._lock:
            for key in list(self._pending):
                entries = self._pending.pop(key)
                limit = self.effective_batch_size(key)
                for start in range(0, len(entries), limit):
                    batches.append(
                        self._form(key, entries[start : start + limit], now, "drain")
                    )
        return batches

    def _form(
        self,
        key: Tuple[str, int, int],
        entries: List[QueuedRequest],
        now: float,
        trigger: str,
    ) -> MicroBatch:
        batch = MicroBatch(
            key=key,
            entries=list(entries),
            formed_at=now,
            trigger=trigger,
            batch_id=self._batch_counter,
        )
        self._batch_counter += 1
        return batch
