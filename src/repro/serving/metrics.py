"""Per-request serving metrics: queue wait, occupancy, latency percentiles.

Every request that travels the serving path leaves one
:class:`RequestRecord` behind -- its submission sequence number, the three
timestamps of its life cycle (enqueued, dispatched to a worker, completed),
and the micro-batch it rode in.  :class:`ServingMetrics` aggregates those
records into the numbers an operator watches: queue-wait and end-to-end
latency percentiles, batch occupancy, dispatch-trigger mix, and throughput.

Determinism contract: the aggregation is a pure function of the recorded
timestamps.  All timestamps come from the clock injected into the serving
components (``time.monotonic`` in production), so a test driving the
pipeline with a manual clock gets exactly reproducible percentiles.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

#: Latency percentiles reported by :meth:`ServingMetrics.snapshot`.
PERCENTILES = (50.0, 95.0, 99.0)


@dataclass(frozen=True)
class RequestRecord:
    """The life cycle of one served request."""

    #: Submission sequence number (admission order, 0-based).
    sequence: int
    frame_id: str
    #: Clock reading when the request entered the admission queue.
    enqueued_at: float
    #: Clock reading when a worker picked up the request's micro-batch.
    dispatched_at: float
    #: Clock reading when the request's future was resolved.
    completed_at: float
    #: Global completion order (0-based, assigned at resolution time).
    completion_index: int
    #: Micro-batch identity and occupancy this request rode in.
    batch_id: int
    batch_size: int
    #: What dispatched the batch: "size", "deadline", or "drain".
    trigger: str
    #: Name of the worker that served the batch.
    worker: str = ""
    #: False when the future was resolved with an exception.
    ok: bool = True
    #: Serving-policy class the request rode (per-class percentile key).
    class_name: str = "default"

    @property
    def queue_wait(self) -> float:
        return self.dispatched_at - self.enqueued_at

    @property
    def service_time(self) -> float:
        return self.completed_at - self.dispatched_at

    @property
    def latency(self) -> float:
        return self.completed_at - self.enqueued_at


def _percentiles_ms(values: Sequence[float]) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ..., "mean": ..., "max": ...}`` in ms."""
    if not len(values):
        return {f"p{int(q)}": 0.0 for q in PERCENTILES} | {"mean": 0.0, "max": 0.0}
    array = np.asarray(values, dtype=np.float64) * 1e3
    out = {
        f"p{int(q)}": float(np.percentile(array, q)) for q in PERCENTILES
    }
    out["mean"] = float(array.mean())
    out["max"] = float(array.max())
    return out


class ServingMetrics:
    """Thread-safe accumulator for serving counters and request records."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[RequestRecord] = []
        self._submitted = 0
        self._rejected = 0
        self._cancelled = 0
        self._completion_counter = 0
        self._sheds = 0
        self._load_sheds = 0
        self._rate_limited = 0
        self._retries = 0
        self._breaker_trips = 0
        self._failovers = 0
        #: Per-class counters for the typed non-served outcomes.
        self._shed_classes: Dict[str, int] = {}
        self._load_shed_classes: Dict[str, int] = {}
        self._rate_limited_classes: Dict[str, int] = {}

    # -- recording ------------------------------------------------------
    def record_submitted(self) -> int:
        """Count one admitted request; returns its sequence number."""
        with self._lock:
            sequence = self._submitted
            self._submitted += 1
            return sequence

    def record_rejected(self) -> None:
        """Count one request bounced by queue backpressure."""
        with self._lock:
            self._rejected += 1

    def record_admission_failed(self) -> None:
        """Undo a :meth:`record_submitted` whose admission then failed."""
        with self._lock:
            self._submitted -= 1

    def record_cancelled(self) -> None:
        """Count one admitted request dropped without being served."""
        with self._lock:
            self._cancelled += 1

    # -- resilience counters --------------------------------------------
    def record_shed(self, class_name: str = "default") -> None:
        """Count one request resolved ``DeadlineExceeded`` before dispatch."""
        with self._lock:
            self._sheds += 1
            self._shed_classes[class_name] = (
                self._shed_classes.get(class_name, 0) + 1
            )

    def record_load_shed(self, class_name: str = "default") -> None:
        """Count one admitted request resolved ``LoadShed`` (SLO admission)."""
        with self._lock:
            self._load_sheds += 1
            self._load_shed_classes[class_name] = (
                self._load_shed_classes.get(class_name, 0) + 1
            )

    def record_rate_limited(self, class_name: str = "default") -> None:
        """Count one submit denied by a token bucket (never admitted)."""
        with self._lock:
            self._rate_limited += 1
            self._rate_limited_classes[class_name] = (
                self._rate_limited_classes.get(class_name, 0) + 1
            )

    def backlog(self) -> int:
        """Admitted-but-unfinished requests: the SLO admission threshold.

        ``submitted`` minus every final state -- resolved records
        (completed or failed), cancellations, and both shed kinds.
        """
        with self._lock:
            return (
                self._submitted
                - len(self._records)
                - self._cancelled
                - self._sheds
                - self._load_sheds
            )

    def record_retry(self) -> None:
        """Count one request re-enqueued after a worker crash."""
        with self._lock:
            self._retries += 1

    def record_breaker_trip(self) -> None:
        """Count one circuit breaker transition to open."""
        with self._lock:
            self._breaker_trips += 1

    def record_failover(self) -> None:
        """Count one request routed past its ring owner to a healthy shard."""
        with self._lock:
            self._failovers += 1

    def next_completion_index(self) -> int:
        """Allocate the next global completion index."""
        with self._lock:
            index = self._completion_counter
            self._completion_counter += 1
            return index

    def record(self, record: RequestRecord) -> None:
        with self._lock:
            self._records.append(record)

    # -- aggregation ----------------------------------------------------
    @property
    def records(self) -> List[RequestRecord]:
        with self._lock:
            return list(self._records)

    @classmethod
    def merge(cls, sources: Sequence["ServingMetrics"]) -> "ServingMetrics":
        """One metrics view over several independent sources (e.g. shards).

        Counters are summed.  Batch ids and completion indices are re-keyed
        with per-source offsets -- sources number both from zero, so a
        naive concatenation would alias batch 0 of shard A with batch 0 of
        shard B and break the per-batch :meth:`futures_monotonic` check.
        Relative order *within* each source is preserved exactly.
        """
        merged = cls()
        batch_offset = 0
        completion_offset = 0
        for source in sources:
            with source._lock:
                records = list(source._records)
                submitted = source._submitted
                rejected = source._rejected
                cancelled = source._cancelled
                completions = source._completion_counter
                sheds = source._sheds
                load_sheds = source._load_sheds
                rate_limited = source._rate_limited
                retries = source._retries
                breaker_trips = source._breaker_trips
                failovers = source._failovers
                shed_classes = dict(source._shed_classes)
                load_shed_classes = dict(source._load_shed_classes)
                rate_limited_classes = dict(source._rate_limited_classes)
            merged._submitted += submitted
            merged._rejected += rejected
            merged._cancelled += cancelled
            merged._sheds += sheds
            merged._load_sheds += load_sheds
            merged._rate_limited += rate_limited
            merged._retries += retries
            merged._breaker_trips += breaker_trips
            merged._failovers += failovers
            for name, count in shed_classes.items():
                merged._shed_classes[name] = (
                    merged._shed_classes.get(name, 0) + count
                )
            for name, count in load_shed_classes.items():
                merged._load_shed_classes[name] = (
                    merged._load_shed_classes.get(name, 0) + count
                )
            for name, count in rate_limited_classes.items():
                merged._rate_limited_classes[name] = (
                    merged._rate_limited_classes.get(name, 0) + count
                )
            max_batch_id = -1
            for record in records:
                max_batch_id = max(max_batch_id, record.batch_id)
                merged._records.append(
                    replace(
                        record,
                        batch_id=record.batch_id + batch_offset,
                        completion_index=(
                            record.completion_index + completion_offset
                        ),
                    )
                )
            batch_offset += max_batch_id + 1
            completion_offset += completions
        merged._completion_counter = completion_offset
        return merged

    def futures_monotonic(self) -> bool:
        """Whether resolution order follows admission order within batches.

        Workers resolve a micro-batch's futures in admission order; a
        ``False`` here means a future was resolved with the wrong slot's
        result (or out of order), which the soak gate treats as corruption.
        Ordering across different batches is legitimately interleaved.
        """
        per_batch: Dict[int, List[RequestRecord]] = {}
        for record in self.records:
            per_batch.setdefault(record.batch_id, []).append(record)
        for members in per_batch.values():
            members.sort(key=lambda r: r.completion_index)
            sequences = [r.sequence for r in members]
            if sequences != sorted(sequences):
                return False
        return True

    def snapshot(self) -> Dict[str, Any]:
        """Aggregate the records into a JSON-friendly report."""
        records = self.records
        with self._lock:
            submitted, rejected = self._submitted, self._rejected
            cancelled = self._cancelled
            sheds = self._sheds
            load_sheds = self._load_sheds
            rate_limited = self._rate_limited
            retries = self._retries
            breaker_trips = self._breaker_trips
            failovers = self._failovers
            shed_classes = dict(self._shed_classes)
            load_shed_classes = dict(self._load_shed_classes)
            rate_limited_classes = dict(self._rate_limited_classes)
        completed = [r for r in records if r.ok]
        failed = [r for r in records if not r.ok]

        batches: Dict[int, RequestRecord] = {}
        for record in records:
            batches.setdefault(record.batch_id, record)
        occupancies = [r.batch_size for r in batches.values()]
        triggers: Dict[str, int] = {}
        for record in batches.values():
            triggers[record.trigger] = triggers.get(record.trigger, 0) + 1

        throughput = 0.0
        if completed:
            span = max(r.completed_at for r in completed) - min(
                r.enqueued_at for r in completed
            )
            throughput = len(completed) / span if span > 0 else float(len(completed))

        return {
            "requests": {
                "submitted": submitted,
                "rejected": rejected,
                "completed": len(completed),
                "failed": len(failed),
                #: Admitted but never served (cancelled at shutdown) --
                #: final-state losses, not work still in the pipeline.
                "dropped": cancelled,
                #: Resolved ``DeadlineExceeded`` before dispatch (TTL shed) --
                #: a typed result, not a loss.
                "shed": sheds,
                #: Resolved ``LoadShed`` by SLO-aware admission -- also a
                #: typed result, never a silent drop.
                "load_shed": load_sheds,
                #: Denied by a token bucket before admission (typed
                #: ``RateLimitExceeded``; never counted as submitted).
                "rate_limited": rate_limited,
                #: Admitted and still queued/executing (0 after a drain).
                "in_flight": (
                    submitted
                    - len(completed)
                    - len(failed)
                    - cancelled
                    - sheds
                    - load_sheds
                ),
            },
            "queue_wait_ms": _percentiles_ms([r.queue_wait for r in completed]),
            "service_ms": _percentiles_ms([r.service_time for r in completed]),
            "latency_ms": _percentiles_ms([r.latency for r in completed]),
            "per_class": self._per_class(
                completed,
                failed,
                shed_classes,
                load_shed_classes,
                rate_limited_classes,
            ),
            "batches": {
                "count": len(batches),
                "mean_occupancy": (
                    float(np.mean(occupancies)) if occupancies else 0.0
                ),
                "max_occupancy": max(occupancies) if occupancies else 0,
                "triggers": triggers,
            },
            "throughput_rps": throughput,
            "futures_monotonic": self.futures_monotonic(),
            "resilience": {
                #: Requests re-enqueued after a worker crash (per request,
                #: per re-dispatch -- one request retried twice counts 2).
                "retries": retries,
                "deadline_sheds": sheds,
                "load_sheds": load_sheds,
                "rate_limited": rate_limited,
                "breaker_trips": breaker_trips,
                "failovers": failovers,
            },
        }

    @staticmethod
    def _per_class(
        completed: List[RequestRecord],
        failed: List[RequestRecord],
        shed_classes: Dict[str, int],
        load_shed_classes: Dict[str, int],
        rate_limited_classes: Dict[str, int],
    ) -> Dict[str, Dict[str, Any]]:
        """Per-priority-class breakdown: counters + latency percentiles."""
        names = (
            {r.class_name for r in completed}
            | {r.class_name for r in failed}
            | set(shed_classes)
            | set(load_shed_classes)
            | set(rate_limited_classes)
        )
        out: Dict[str, Dict[str, Any]] = {}
        for name in sorted(names):
            done = [r for r in completed if r.class_name == name]
            out[name] = {
                "completed": len(done),
                "failed": sum(1 for r in failed if r.class_name == name),
                "shed": shed_classes.get(name, 0),
                "load_shed": load_shed_classes.get(name, 0),
                "rate_limited": rate_limited_classes.get(name, 0),
                "queue_wait_ms": _percentiles_ms([r.queue_wait for r in done]),
                "latency_ms": _percentiles_ms([r.latency for r in done]),
            }
        return out


#: Type of the injectable clock shared by the serving components.
Clock = Callable[[], float]


class ManualClock:
    """A settable clock for deterministic tests (monotonic by convention)."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += float(seconds)
        return self.now
