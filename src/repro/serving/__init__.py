"""Asynchronous serving on top of the ``FrameBatch`` boundary.

The subsystem is three small pieces wired together by
:class:`~repro.serving.server.FrameServer`:

* :class:`~repro.serving.queue.AdmissionQueue` -- bounded FIFO front door
  with enqueue timestamps and backpressure;
* :class:`~repro.serving.scheduler.MicroBatchScheduler` -- groups admitted
  requests by warm-state shape key into micro-batches, dispatching on a
  max-batch-size or max-wait-deadline trigger, whichever fires first;
* worker threads each owning one warm :class:`~repro.session.Session`,
  draining batches through the bit-identical ``run_batch`` path;
* :class:`~repro.serving.metrics.ServingMetrics` -- per-request records and
  p50/p95/p99 queue-wait/latency percentiles.

Execution is pluggable: ``FrameServer(execution="thread")`` runs warm
sessions on worker threads, ``execution="process"`` on fork-spawned worker
processes with shared-memory batch transport, and
:class:`~repro.serving.cluster.router.ShardRouter` places requests on N
in-process servers via consistent hashing -- see
:mod:`repro.serving.cluster`.

``Session.submit`` is the one-liner entry point (a single-worker server
wrapped around the session itself); build a :class:`FrameServer` directly
for multi-worker pools.

Resilience (:mod:`~repro.serving.resilience`, :mod:`~repro.serving.faults`)
wraps the same pipeline without touching the bit-identical core: requests
may carry TTL deadlines (shed as :class:`DeadlineExceeded` before
dispatch), crashed process workers are retried with capped seeded-jitter
backoff (:class:`RetryPolicy`; :class:`RetriesExhausted` when out of
attempts), shards fail over along the hash ring behind per-shard
:class:`CircuitBreaker` guards, and a seeded :class:`FaultPlan` injects
deterministic kills / latency / transport corruption for chaos testing.
"""

from repro.serving.config import (
    ChaosConfig,
    ExecutionConfig,
    PolicyConfig,
    ServeConfig,
    TrafficConfig,
)
from repro.serving.faults import FaultPlan, FaultSpec
from repro.serving.metrics import (
    ManualClock,
    RequestRecord,
    ServingMetrics,
)
from repro.serving.policy import (
    AdaptiveMaxWait,
    LoadShed,
    PriorityClass,
    RateLimitExceeded,
    ServingPolicy,
    TokenBucket,
)
from repro.serving.traffic import TrafficItem, TrafficModel
from repro.serving.resilience import (
    CircuitBreaker,
    DeadlineExceeded,
    NoHealthyShard,
    RetriesExhausted,
    RetryPolicy,
)
from repro.serving.queue import (
    AdmissionQueue,
    QueueClosed,
    QueuedRequest,
    QueueFull,
)
from repro.serving.scheduler import MicroBatch, MicroBatchScheduler
from repro.serving.server import (
    FrameServer,
    response_signature,
    signatures_equal,
)
from repro.serving.cluster import (
    ProcessWorkerPool,
    ShardRouter,
    ThreadWorkerPool,
    WorkerCrashed,
    WorkerError,
)
from repro.session import SubmitOptions

__all__ = [
    "AdaptiveMaxWait",
    "AdmissionQueue",
    "ChaosConfig",
    "CircuitBreaker",
    "DeadlineExceeded",
    "ExecutionConfig",
    "FaultPlan",
    "FaultSpec",
    "FrameServer",
    "LoadShed",
    "ManualClock",
    "MicroBatch",
    "MicroBatchScheduler",
    "NoHealthyShard",
    "PolicyConfig",
    "PriorityClass",
    "ProcessWorkerPool",
    "QueueClosed",
    "QueueFull",
    "QueuedRequest",
    "RateLimitExceeded",
    "RequestRecord",
    "RetriesExhausted",
    "RetryPolicy",
    "ServeConfig",
    "ServingMetrics",
    "ServingPolicy",
    "ShardRouter",
    "SubmitOptions",
    "ThreadWorkerPool",
    "TokenBucket",
    "TrafficConfig",
    "TrafficItem",
    "TrafficModel",
    "response_signature",
    "signatures_equal",
]
