"""Deterministic intra-batch stage parallelism.

The serving layer already spreads *requests* over workers; this package
spreads the frames of one :class:`~repro.core.batch.FrameBatch` over cores
*inside* a single engine stage (octree table + down-sampling, workload
extraction + pricing).  The contract is the one the serving worker pool
honors: results are joined in submission order, so a stage that is pure
per frame produces output bit-identical to the serial loop for any worker
count.
"""

from repro.parallel.executor import (
    DEFAULT_WORKERS_ENV,
    ordered_map,
    resolve_workers,
    shutdown_pools,
)

__all__ = [
    "DEFAULT_WORKERS_ENV",
    "ordered_map",
    "resolve_workers",
    "shutdown_pools",
]
