"""Ordered thread-based fork/join over the items of one batch.

Threads, not processes: the preprocessing hot path (m-code encode, sorts,
gathers, blocked MLPs) spends its time inside NumPy kernels that release
the GIL, so threads put real cores behind a batch without pickling frames
across process boundaries.  Pools are cached at module level, keyed by
worker count -- engines hold only the integer knob, which keeps them (and
the Session above them) picklable for the process-sharded serving path.

Determinism contract
--------------------
:func:`ordered_map` joins results strictly in submission order, so for a
``fn`` that is pure per item (no order-dependent shared mutation, fresh
RNG per call) the output list is bit-identical to ``[fn(x) for x in
items]`` for every worker count, including 1 (which short-circuits to the
plain loop, no pool at all).  Exceptions propagate like the serial loop's:
the first failing item in submission order raises; later items may still
have run, but their effects are invisible to a pure ``fn``.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from threading import Lock
from typing import Callable, Dict, Iterable, List, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment fallback consulted when no explicit worker count is given.
DEFAULT_WORKERS_ENV = "REPRO_PREPROCESS_WORKERS"

_pools: Dict[int, ThreadPoolExecutor] = {}
_pools_lock = Lock()


def _reset_after_fork() -> None:
    """Drop inherited pools in a forked child.

    A forked process inherits the ``_pools`` dict but none of the pool
    threads, so submitting to an inherited executor would block forever
    (its worker set looks fully populated, yet nothing drains the queue).
    The husks are discarded without ``shutdown()`` -- their threads do not
    exist here -- and the lock is re-created in case the fork happened
    while another thread held it.
    """
    global _pools_lock
    _pools.clear()
    _pools_lock = Lock()


if hasattr(os, "register_at_fork"):  # pragma: no branch - always on posix
    os.register_at_fork(after_in_child=_reset_after_fork)


def resolve_workers(
    explicit: Optional[int] = None,
    env_var: str = DEFAULT_WORKERS_ENV,
) -> int:
    """Resolve a worker count: explicit knob > environment > 1 (serial)."""
    if explicit is None:
        raw = os.environ.get(env_var, "").strip()
        if not raw:
            return 1
        explicit = int(raw)
    workers = int(explicit)
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


def _pool(workers: int) -> ThreadPoolExecutor:
    pool = _pools.get(workers)
    if pool is None:
        with _pools_lock:
            pool = _pools.get(workers)
            if pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix=f"repro-batch-{workers}",
                )
                _pools[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Drain and drop every cached pool (test isolation / clean exit)."""
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=True)


def ordered_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: Optional[int] = None,
) -> List[R]:
    """``[fn(x) for x in items]`` over a thread pool, joined in order.

    ``max_workers=None`` falls back to ``REPRO_PREPROCESS_WORKERS`` and
    then to 1.  A resolved count of 1 (or fewer than two items) runs the
    plain serial loop on the calling thread.
    """
    sequence = list(items)
    workers = resolve_workers(max_workers)
    if workers == 1 or len(sequence) <= 1:
        return [fn(item) for item in sequence]
    pool = _pool(min(workers, len(sequence)))
    futures = [pool.submit(fn, item) for item in sequence]
    return [future.result() for future in futures]
