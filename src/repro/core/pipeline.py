"""The end-to-end HgPCN system (pre-processing + inference).

:class:`HgPCNSystem` chains the two engines on a per-frame basis and exposes
the system-level, real-time evaluation of Section VII-E: process a timestamped
frame sequence and check whether the service keeps up with the sensor's data
generation rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import HgPCNConfig
from repro.core.engine import (
    InferenceEngine,
    InferenceExecution,
    PreprocessingEngine,
    PreprocessingResult,
)
from repro.core.metrics import LatencyBreakdown
from repro.datasets.base import Frame, PointCloudDataset
from repro.datasets.lidar import LidarSensorModel, ServiceTrace
from repro.geometry.pointcloud import PointCloud


@dataclass
class EndToEndResult:
    """Per-frame result of the full HgPCN pipeline."""

    frame_id: str
    preprocessing: PreprocessingResult
    inference: InferenceExecution
    breakdown: LatencyBreakdown

    def total_seconds(self) -> float:
        return self.breakdown.total_seconds()

    @property
    def preprocessing_seconds(self) -> float:
        return self.breakdown.seconds_for("preprocessing")

    @property
    def inference_seconds(self) -> float:
        return self.breakdown.seconds_for("inference")


@dataclass
class SequenceResult:
    """Result of processing a whole frame sequence (Section VII-E)."""

    frame_results: List[EndToEndResult]
    service_trace: Optional[ServiceTrace] = None
    #: Whether cross-frame pipelining was modelled (see
    #: :meth:`HgPCNSystem.process_sequence`).
    pipelined: bool = False

    def frame_latencies(self) -> List[float]:
        """Per-frame latency as seen by the arrival queue.

        Without pipelining this is the serial pre-processing + inference time
        of each frame.  With pipelining the CPU-side octree build of the next
        frame overlaps the FPGA-side inference of the current one, so the
        steady-state per-frame occupancy is the maximum of the two phases.
        """
        latencies = []
        for i, result in enumerate(self.frame_results):
            if self.pipelined and i > 0:
                latencies.append(
                    max(result.preprocessing_seconds, result.inference_seconds)
                )
            else:
                latencies.append(result.total_seconds())
        return latencies

    def mean_frame_seconds(self) -> float:
        if not self.frame_results:
            return 0.0
        return float(np.mean(self.frame_latencies()))

    def achieved_fps(self) -> float:
        mean = self.mean_frame_seconds()
        return float("inf") if mean == 0 else 1.0 / mean

    def keeps_up_with_sensor(self) -> bool:
        if self.service_trace is None:
            return True
        return self.service_trace.keeps_up()


@dataclass
class HgPCNSystem:
    """End-to-end HgPCN: Pre-processing Engine + Inference Engine."""

    config: HgPCNConfig = field(default_factory=HgPCNConfig)
    task: str = "semantic_segmentation"
    preprocessing_engine: Optional[PreprocessingEngine] = None
    inference_engine: Optional[InferenceEngine] = None

    def __post_init__(self) -> None:
        if self.preprocessing_engine is None:
            self.preprocessing_engine = PreprocessingEngine(config=self.config)
        if self.inference_engine is None:
            self.inference_engine = InferenceEngine(config=self.config, task=self.task)

    # ------------------------------------------------------------------
    def process_cloud(self, cloud: PointCloud, frame_id: str = "frame") -> EndToEndResult:
        """Run the full pipeline on one raw frame."""
        pre = self.preprocessing_engine.process(cloud)
        inf = self.inference_engine.process(pre.sampled)

        breakdown = LatencyBreakdown()
        breakdown.add("preprocessing", pre.total_seconds())
        breakdown.add("inference", inf.total_seconds())
        return EndToEndResult(
            frame_id=frame_id,
            preprocessing=pre,
            inference=inf,
            breakdown=breakdown,
        )

    def process_frame(self, frame: Frame) -> EndToEndResult:
        return self.process_cloud(frame.cloud, frame_id=frame.frame_id)

    # ------------------------------------------------------------------
    def process_sequence(
        self,
        frames: Sequence[Frame] | PointCloudDataset,
        sensor: Optional[LidarSensorModel] = None,
        pipelined: bool = False,
    ) -> SequenceResult:
        """Process a frame sequence and evaluate real-time behaviour.

        When ``sensor`` is given (or the frames carry timestamps implying a
        rate), the per-frame modelled latencies are queued through the
        sensor's arrival schedule to decide whether the service keeps up with
        the data generation rate -- the Section VII-E criterion.

        ``pipelined`` models cross-frame overlap: the Octree-build Unit (CPU)
        prepares frame ``i+1`` while the FPGA engines process frame ``i``,
        which the shared-memory platform permits because the two phases use
        disjoint resources.  Functional outputs are unchanged; only the
        latency seen by the arrival queue drops to the slower of the two
        phases per frame.
        """
        frame_list = list(frames)
        results = [self.process_frame(frame) for frame in frame_list]
        sequence = SequenceResult(frame_results=results, pipelined=pipelined)

        trace = None
        if sensor is None:
            timestamps = [f.timestamp for f in frame_list if f.timestamp is not None]
            if len(timestamps) >= 2:
                deltas = np.diff(sorted(timestamps))
                deltas = deltas[deltas > 0]
                if deltas.size:
                    sensor = LidarSensorModel(frame_rate_hz=float(1.0 / deltas.mean()))
        if sensor is not None:
            trace = sensor.simulate_service(sequence.frame_latencies())
            sequence.service_trace = trace
        return sequence
