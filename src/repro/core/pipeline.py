"""The end-to-end HgPCN system (pre-processing + inference).

:class:`HgPCNSystem` chains the two engines on a per-frame basis and exposes
the system-level, real-time evaluation of Section VII-E: process a timestamped
frame sequence and check whether the service keeps up with the sensor's data
generation rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import HgPCNConfig
from repro.core.engine import (
    InferenceEngine,
    InferenceExecution,
    PreprocessingEngine,
    PreprocessingResult,
)
from repro.core.metrics import LatencyBreakdown
from repro.datasets.base import Frame, PointCloudDataset
from repro.datasets.lidar import LidarSensorModel, ServiceTrace
from repro.geometry.pointcloud import PointCloud


@dataclass
class EndToEndResult:
    """Per-frame result of the full HgPCN pipeline."""

    frame_id: str
    preprocessing: PreprocessingResult
    inference: InferenceExecution
    breakdown: LatencyBreakdown

    def total_seconds(self) -> float:
        return self.breakdown.total_seconds()

    @property
    def preprocessing_seconds(self) -> float:
        return self.breakdown.seconds_for("preprocessing")

    @property
    def inference_seconds(self) -> float:
        return self.breakdown.seconds_for("inference")


@dataclass
class SequenceResult:
    """Result of processing a whole frame sequence (Section VII-E)."""

    frame_results: List[EndToEndResult]
    service_trace: Optional[ServiceTrace] = None
    #: Whether cross-frame pipelining was modelled (see
    #: :meth:`HgPCNSystem.process_sequence`).
    pipelined: bool = False

    def frame_latencies(self) -> List[float]:
        """Per-frame latency as seen by the arrival queue.

        Without pipelining this is the serial pre-processing + inference time
        of each frame.  With pipelining the CPU-side octree build of the next
        frame overlaps the FPGA-side inference of the current one, so the
        steady-state per-frame occupancy is the maximum of the two phases.
        """
        latencies = []
        for i, result in enumerate(self.frame_results):
            if self.pipelined and i > 0:
                latencies.append(
                    max(result.preprocessing_seconds, result.inference_seconds)
                )
            else:
                latencies.append(result.total_seconds())
        return latencies

    def mean_frame_seconds(self) -> float:
        if not self.frame_results:
            return 0.0
        return float(np.mean(self.frame_latencies()))

    def achieved_fps(self) -> float:
        mean = self.mean_frame_seconds()
        return float("inf") if mean == 0 else 1.0 / mean

    def keeps_up_with_sensor(self) -> bool:
        if self.service_trace is None:
            return True
        return self.service_trace.keeps_up()


@dataclass
class HgPCNSystem:
    """End-to-end HgPCN: Pre-processing Engine + Inference Engine.

    Retained as a thin compatibility shim over :class:`repro.session.Session`
    -- the session owns the engines and the warm model/sampler state, so a
    long-lived ``HgPCNSystem`` now also reuses its constructed network across
    same-shaped frames instead of rebuilding it per frame.  The session's
    content-addressed response cache is *disabled* here to preserve the old
    memory profile (it would retain whole frames and results); new code
    should construct a ``Session`` directly and opt into it.
    """

    config: HgPCNConfig = field(default_factory=HgPCNConfig)
    task: str = "semantic_segmentation"
    preprocessing_engine: Optional[PreprocessingEngine] = None
    inference_engine: Optional[InferenceEngine] = None

    def __post_init__(self) -> None:
        # Imported here: repro.session imports the result types above.
        from repro.session import Session

        self._session = Session(
            config=self.config,
            task=self.task,
            response_cache_size=0,
            preprocessing_engine=self.preprocessing_engine,
            inference_engine=self.inference_engine,
        )
        self.preprocessing_engine = self._session.preprocessing_engine
        self.inference_engine = self._session.inference_engine

    @property
    def session(self) -> "Session":
        """The warm :class:`~repro.session.Session` backing this facade."""
        return self._session

    # ------------------------------------------------------------------
    def process_cloud(self, cloud: PointCloud, frame_id: str = "frame") -> EndToEndResult:
        """Run the full pipeline on one raw frame."""
        return self._session.run(cloud, frame_id=frame_id).result

    def process_frame(self, frame: Frame) -> EndToEndResult:
        from repro.session import FrameRequest

        return self._session.run(FrameRequest.from_frame(frame)).result

    # ------------------------------------------------------------------
    def process_sequence(
        self,
        frames: Sequence[Frame] | PointCloudDataset,
        sensor: Optional[LidarSensorModel] = None,
        pipelined: bool = False,
    ) -> SequenceResult:
        """Process a frame sequence and evaluate real-time behaviour.

        When ``sensor`` is given (or the frames carry timestamps implying a
        rate), the per-frame modelled latencies are queued through the
        sensor's arrival schedule to decide whether the service keeps up with
        the data generation rate -- the Section VII-E criterion.

        ``pipelined`` models cross-frame overlap: the Octree-build Unit (CPU)
        prepares frame ``i+1`` while the FPGA engines process frame ``i``,
        which the shared-memory platform permits because the two phases use
        disjoint resources.  Functional outputs are unchanged; only the
        latency seen by the arrival queue drops to the slower of the two
        phases per frame.
        """
        return self._session.run_sequence(frames, sensor=sensor, pipelined=pipelined)
