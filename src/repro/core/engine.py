"""The two HgPCN engines (Figure 4).

:class:`PreprocessingEngine` executes the pre-processing phase of one frame:
octree construction and host-memory reorganisation on the CPU (Octree-build
Unit), Octree-Table transfer over MMIO, and OIS down-sampling in the FPGA
Down-sampling Unit.  It produces the down-sampled input cloud *and* the
latency/memory estimates of the phase.

:class:`InferenceEngine` executes the inference phase: VEG-based data
structuring in the DSU and PointNet++ feature computation in the FCU.  The
functional forward pass produces real logits; the latency model replays its
measured gather statistics on the hardware cost models.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import HgPCNConfig
from repro.core.framebatch import FrameBatch
from repro.core.metrics import LatencyBreakdown, OpCounters
from repro.accelerators.hgpcn import HgPCNInferenceAccelerator
from repro.accelerators.base import (
    InferenceAccelerator,
    InferenceReport,
    InferenceWorkloadSpec,
)
from repro.datastructuring.base import Gatherer
from repro.datastructuring.veg import VoxelExpandedGatherer
from repro.geometry.pointcloud import PointCloud
from repro.geometry.voxelgrid import suggest_depth
from repro.hardware.interconnect import InterconnectModel
from repro.hardware.memory import OnChipMemoryModel, ois_onchip_megabits
from repro.hardware.octree_build_unit import OctreeBuildUnit
from repro.hardware.sampling_module import DownSamplingUnit
from repro.network.backends import resolve_backend
from repro.network.pointnet2 import ForwardResult, build_model_for_task
from repro.network.workload import NetworkWorkload, extract_workload
from repro.octree.builder import Octree
from repro.octree.linear import OctreeTable
from repro.parallel import ordered_map
from repro.sampling.base import Sampler, SamplingResult


def _accepts_keyword(func: Any, name: str) -> bool:
    """Whether ``func`` accepts keyword argument ``name`` (incl. ``**kwargs``)."""
    try:
        parameters = inspect.signature(func).parameters
    except (TypeError, ValueError):
        return False
    if name in parameters:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


@dataclass
class PreprocessingResult:
    """Output of the Pre-processing Engine for one frame."""

    sampled: PointCloud
    sampling: SamplingResult
    octree: Octree
    octree_table: OctreeTable
    breakdown: LatencyBreakdown
    onchip_megabits: float

    def total_seconds(self) -> float:
        return self.breakdown.total_seconds()


@dataclass
class PreprocessingEngine:
    """Octree-build Unit (CPU) + Down-sampling Unit (FPGA).

    The down-sampling method is pluggable via the component registry:
    ``sampler_name`` is resolved with ``registry.create("sampler", ...)``
    (default: the paper's OIS).  Constructed samplers are cached per octree
    depth, so a warm engine serving a stream of same-sized frames does not
    rebuild its sampler per frame.  The latency breakdown always models the
    paper's hardware Down-sampling Unit; swapping the functional sampler
    changes which points survive, not the hardware being modelled.
    """

    config: HgPCNConfig = field(default_factory=HgPCNConfig)
    octree_build_unit: OctreeBuildUnit = field(default_factory=OctreeBuildUnit)
    downsampling_unit: DownSamplingUnit = field(default_factory=DownSamplingUnit)
    interconnect: InterconnectModel = field(default_factory=InterconnectModel)
    #: Registry name of the down-sampling method ("ois", "fps", "random", ...).
    sampler_name: str = "ois"
    #: Extra keyword arguments forwarded to the sampler factory.  These win
    #: over the engine-derived defaults (octree depth, seed, ...).
    sampler_options: Dict[str, Any] = field(default_factory=dict)
    #: Intra-batch worker count for :meth:`process_batch` (frames of one
    #: batch finish on different cores, joined in frame order).  ``None``
    #: defers to ``REPRO_PREPROCESS_WORKERS``, then serial.
    max_workers: Optional[int] = None
    #: Warm sampler cache keyed by (sampler_name, octree depth):
    #: (sampler, accepts_octree).  Keyed on the name so reassigning
    #: ``sampler_name`` on a warm engine takes effect; ``sampler_options``
    #: changes still require a fresh engine.
    _samplers: Dict[Tuple[str, int], Tuple[Sampler, bool]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def sampler_for(self, depth: int) -> Sampler:
        """Return (building and caching on first use) the sampler for ``depth``."""
        return self._sampler_entry(depth)[0]

    def _sampler_entry(self, depth: int) -> Tuple[Sampler, bool]:
        key = (self.sampler_name, depth)
        entry = self._samplers.get(key)
        if entry is None:
            sampler = self._build_sampler(depth)
            entry = (sampler, _accepts_keyword(sampler.sample, "octree"))
            self._samplers[key] = entry
        return entry

    def _build_sampler(self, depth: int) -> Sampler:
        pre = self.config.preprocessing
        options = dict(self.sampler_options)
        options.setdefault("seed", pre.seed)
        if self.sampler_name in ("ois", "ois-approx"):
            options.setdefault("octree_depth", depth)
            options.setdefault("num_sampling_modules", pre.num_sampling_modules)
            if pre.approximate:
                options.setdefault("approximate", True)
        from repro import registry

        return registry.create("sampler", self.sampler_name, **options)

    def process(self, cloud: PointCloud) -> PreprocessingResult:
        """Pre-process one raw frame: octree build + down-sampling."""
        pre = self.config.preprocessing
        depth = pre.octree_depth or suggest_depth(cloud.num_points)
        octree = Octree.build(cloud, depth=depth)
        return self._finish_frame(cloud, octree, depth)

    def process_batch(self, batch: "FrameBatch") -> List[PreprocessingResult]:
        """Pre-process a same-shaped frame batch.

        The octree depth and sampler are resolved once for the whole batch
        (every member down-samples to the same shape), and the per-frame
        octrees come out of one :meth:`Octree.build_batch` kernel sequence
        -- one stacked m-code encode and one stacked sort for all frames.
        Sampling and the latency/on-chip accounting stay per frame --
        spread over ``max_workers`` cores when configured -- and every
        returned :class:`PreprocessingResult` is bit-identical to
        :meth:`process` on that frame alone, for any worker count: the
        per-frame tail is pure (fresh sampler RNG per frame) and results
        join in frame order.
        """
        pre = self.config.preprocessing
        depth = pre.octree_depth or suggest_depth(batch.num_points)
        octrees = Octree.build_batch(batch.clouds, depth=depth)
        # Warm the sampler cache on the calling thread so the parallel
        # per-frame tails never race the cache fill.
        self._sampler_entry(depth)
        return ordered_map(
            lambda pair: self._finish_frame(pair[0], pair[1], depth),
            zip(batch.clouds, octrees),
            max_workers=self.max_workers,
        )

    def _finish_frame(
        self, cloud: PointCloud, octree: Octree, depth: int
    ) -> PreprocessingResult:
        """Shared per-frame tail: table, down-sampling, cost accounting."""
        num_samples = min(self.config.preprocessing.num_samples, cloud.num_points)

        # Flat-path table construction: pure array work over the per-level
        # code arrays, so the pointer tree stays unmaterialised end-to-end.
        table = OctreeTable.from_flat(octree)

        sampler, accepts_octree = self._sampler_entry(depth)
        if accepts_octree:
            sampling = sampler.sample(cloud, num_samples, octree=octree)
        else:
            sampling = sampler.sample(cloud, num_samples)

        breakdown = LatencyBreakdown()
        breakdown.add("octree_build", self.octree_build_unit.seconds_for(octree.stats))
        breakdown.add(
            "table_transfer",
            self.interconnect.octree_table_transfer_seconds(table.total_bits()),
        )
        breakdown.add(
            "downsampling",
            self.downsampling_unit.seconds_per_frame(depth, num_samples),
        )

        onchip = ois_onchip_megabits(
            num_table_entries=len(table),
            entry_bits=table.entry_bits(),
            num_samples=num_samples,
        )
        budget = OnChipMemoryModel(
            capacity_megabits=self.config.system.onchip_memory_megabits
        )
        budget.allocate("octree_table_and_spt", onchip)

        return PreprocessingResult(
            sampled=sampling.sampled,
            sampling=sampling,
            octree=octree,
            octree_table=table,
            breakdown=breakdown,
            onchip_megabits=onchip,
        )


@dataclass
class InferenceExecution:
    """Output of the Inference Engine for one down-sampled input."""

    forward: ForwardResult
    report: InferenceReport
    breakdown: LatencyBreakdown
    gather_run_stats: Dict[str, object] = field(default_factory=dict)
    #: Workload description extracted once from ``forward`` (Figure 2's MVM
    #: layer shapes + data structuring counters).
    workload: Optional[NetworkWorkload] = None
    #: Whether the engine served this execution from warm state (a cached
    #: model) instead of constructing the network.
    warm: bool = False

    def total_seconds(self) -> float:
        return self.report.total_seconds()

    def predicted_labels(self) -> np.ndarray:
        return self.forward.predicted_class()

    def workload_counters(self) -> OpCounters:
        """Aggregate data structuring counters of this execution."""
        if self.workload is None:
            self.workload = extract_workload(self.forward)
        return self.workload.data_structuring


@dataclass
class InferenceWarmState:
    """Constructed network state reused across same-shaped frames.

    Building the PointNet++ model (weight initialisation, layer wiring) only
    depends on ``(task, input_size, feature_channels, backend)`` plus the
    engine config, not on the frame's point coordinates, so a warm engine
    keeps one entry per shape and reuses the same model and gatherer objects
    for every frame of that shape.  The compute backend is part of the key:
    a model is wired to its backend at construction, so two backends must
    never share a warm entry.
    """

    key: Tuple[str, int, int, str]
    gatherer: Gatherer
    model: Any
    #: Number of forward passes served by this entry.
    uses: int = 0


@dataclass
class InferenceEngine:
    """Data Structuring Unit (VEG) + Feature Computation Unit (DLA)."""

    config: HgPCNConfig = field(default_factory=HgPCNConfig)
    accelerator: InferenceAccelerator = field(
        default_factory=HgPCNInferenceAccelerator
    )
    task: str = "classification"
    num_classes: Optional[int] = None
    #: Compute backend name executing the dense layers (``None`` = process
    #: default: ``REPRO_BACKEND`` env when set, else numpy).
    backend: Optional[str] = None
    #: Intra-batch worker count for the per-frame tail of
    #: :meth:`process_batch` (workload extraction + accelerator pricing).
    #: ``None`` defers to ``REPRO_PREPROCESS_WORKERS``, then serial.
    max_workers: Optional[int] = None
    #: Warm model cache, keyed by (task, input_size, feature_channels,
    #: backend name).
    _warm: Dict[Tuple[str, int, int, str], InferenceWarmState] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    #: How many times a model was constructed (cache misses).
    model_builds: int = field(default=0, init=False, repr=False, compare=False)
    #: Whether the accelerator accepts measured VEG statistics, probed once
    #: per accelerator object: (id(accelerator), accepts).
    _measured_probe: Optional[Tuple[int, bool]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def warm_state(self, input_size: int, feature_channels: int) -> InferenceWarmState:
        """Return (building on first use) the warm state for one input shape."""
        backend = resolve_backend(self.backend)
        key = (self.task, input_size, feature_channels, backend.name)
        state = self._warm.get(key)
        if state is None:
            inf = self.config.inference
            # The gathering grid depth is the octree leaf level the DSU walks
            # (the raw-frame octree built by the Pre-processing Engine indexes
            # the same space, so reusing it is an amortisation the paper
            # points out -- the grid here is tiny).
            depth = suggest_depth(input_size)
            gatherer = VoxelExpandedGatherer(
                depth=depth,
                semi_approximate=inf.semi_approximate,
                seed=inf.seed,
            )
            model = build_model_for_task(
                self.task,
                input_size=input_size,
                gatherer=gatherer,
                input_feature_channels=feature_channels,
                neighbors=min(inf.neighbors_per_centroid, max(1, input_size // 2)),
                seed=inf.seed,
                backend=backend,
            )
            state = InferenceWarmState(key=key, gatherer=gatherer, model=model)
            self._warm[key] = state
            self.model_builds += 1
        return state

    def warm_keys(self) -> Tuple[Tuple[str, int, int, str], ...]:
        return tuple(self._warm)

    def process(self, sampled: PointCloud) -> InferenceExecution:
        """Run the PCN on one down-sampled input cloud."""
        state = self.warm_state(sampled.num_points, sampled.num_feature_channels)
        warm = state.uses > 0
        state.uses += 1
        forward = state.model.forward(sampled)
        return self._finish_execution(sampled, forward, warm)

    def process_batch(self, batch: FrameBatch) -> List[InferenceExecution]:
        """Run the PCN on a batch of same-shaped down-sampled inputs.

        One warm model serves the whole batch (built at most once), and the
        forward pass runs batch-native via the model's ``forward_batch`` --
        every shared-MLP / FP / head layer sees one stacked operand for all
        frames -- while traces, workload extraction, and accelerator pricing
        stay per frame.  Each returned :class:`InferenceExecution` is
        bit-identical to :meth:`process` on that frame alone, including the
        ``warm`` flag sequence (the first frame of a cold shape reports
        ``warm=False``, every later one ``warm=True``).
        """
        state = self.warm_state(batch.num_points, batch.num_feature_channels)
        warms = []
        for _ in range(len(batch)):
            warms.append(state.uses > 0)
            state.uses += 1
        if hasattr(state.model, "forward_batch"):
            forwards = state.model.forward_batch(batch)
        else:
            forwards = [state.model.forward(cloud) for cloud in batch.clouds]
        # Resolve the accelerator probe on the calling thread so the
        # parallel per-frame tails only read it.
        self._ensure_measured_probe()
        return ordered_map(
            lambda args: self._finish_execution(*args),
            zip(batch.clouds, forwards, warms),
            max_workers=self.max_workers,
        )

    def _finish_execution(
        self, sampled: PointCloud, forward: ForwardResult, warm: bool
    ) -> InferenceExecution:
        """Shared per-frame tail: workload extraction + accelerator pricing."""
        inf = self.config.inference
        workload = extract_workload(forward)

        # Collect the measured VEG statistics per SA layer for the DSU model.
        run_stats: Dict[str, object] = {}
        for trace in forward.sa_traces:
            if trace.gather is not None and "run_stats" in trace.gather.info:
                run_stats[trace.name] = trace.gather.info["run_stats"]

        spec = InferenceWorkloadSpec(
            dataset="custom",
            task=self.task,
            input_size=sampled.num_points,
            neighbors=inf.neighbors_per_centroid,
            input_feature_channels=sampled.num_feature_channels,
        )
        report = self._inference_report(spec, run_stats)
        return InferenceExecution(
            forward=forward,
            report=report,
            breakdown=report.breakdown,
            gather_run_stats=run_stats,
            workload=workload,
            warm=warm,
        )

    def _inference_report(
        self, spec: InferenceWorkloadSpec, run_stats: Dict[str, object]
    ) -> InferenceReport:
        """Price ``spec`` on the configured accelerator.

        Only accelerators that model the DSU (i.e. HgPCN) accept the measured
        per-layer VEG statistics; the baselines price their own analytic data
        structuring workload.
        """
        if self._ensure_measured_probe():
            return self.accelerator.inference_report(
                spec, measured_run_stats=run_stats or None
            )
        return self.accelerator.inference_report(spec)

    def _ensure_measured_probe(self) -> bool:
        """Whether the accelerator accepts measured VEG statistics (cached)."""
        probe = self._measured_probe
        if probe is None or probe[0] != id(self.accelerator):
            probe = (
                id(self.accelerator),
                _accepts_keyword(
                    self.accelerator.inference_report, "measured_run_stats"
                ),
            )
            self._measured_probe = probe
        return probe[1]

    def workload_counters(self, execution: InferenceExecution) -> OpCounters:
        """Aggregate data structuring counters of one execution."""
        return execution.workload_counters()
