"""The two HgPCN engines (Figure 4).

:class:`PreprocessingEngine` executes the pre-processing phase of one frame:
octree construction and host-memory reorganisation on the CPU (Octree-build
Unit), Octree-Table transfer over MMIO, and OIS down-sampling in the FPGA
Down-sampling Unit.  It produces the down-sampled input cloud *and* the
latency/memory estimates of the phase.

:class:`InferenceEngine` executes the inference phase: VEG-based data
structuring in the DSU and PointNet++ feature computation in the FCU.  The
functional forward pass produces real logits; the latency model replays its
measured gather statistics on the hardware cost models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.config import HgPCNConfig
from repro.core.metrics import LatencyBreakdown, OpCounters
from repro.accelerators.hgpcn import HgPCNInferenceAccelerator
from repro.accelerators.base import InferenceReport, InferenceWorkloadSpec
from repro.datastructuring.veg import VoxelExpandedGatherer
from repro.geometry.pointcloud import PointCloud
from repro.geometry.voxelgrid import VoxelGrid, suggest_depth
from repro.hardware.interconnect import InterconnectModel
from repro.hardware.memory import OnChipMemoryModel, ois_onchip_megabits
from repro.hardware.octree_build_unit import OctreeBuildUnit
from repro.hardware.sampling_module import DownSamplingUnit
from repro.network.pointnet2 import ForwardResult, build_model_for_task
from repro.network.workload import extract_workload
from repro.octree.builder import Octree
from repro.octree.linear import OctreeTable
from repro.sampling.ois import OctreeIndexedSampler
from repro.sampling.base import SamplingResult


@dataclass
class PreprocessingResult:
    """Output of the Pre-processing Engine for one frame."""

    sampled: PointCloud
    sampling: SamplingResult
    octree: Octree
    octree_table: OctreeTable
    breakdown: LatencyBreakdown
    onchip_megabits: float

    def total_seconds(self) -> float:
        return self.breakdown.total_seconds()


@dataclass
class PreprocessingEngine:
    """Octree-build Unit (CPU) + Down-sampling Unit (FPGA) running OIS."""

    config: HgPCNConfig = field(default_factory=HgPCNConfig)
    octree_build_unit: OctreeBuildUnit = field(default_factory=OctreeBuildUnit)
    downsampling_unit: DownSamplingUnit = field(default_factory=DownSamplingUnit)
    interconnect: InterconnectModel = field(default_factory=InterconnectModel)

    def process(self, cloud: PointCloud) -> PreprocessingResult:
        """Pre-process one raw frame: octree build + OIS down-sampling."""
        pre = self.config.preprocessing
        depth = pre.octree_depth or suggest_depth(cloud.num_points)
        num_samples = min(pre.num_samples, cloud.num_points)

        octree = Octree.build(cloud, depth=depth)
        table = OctreeTable.from_octree(octree)

        sampler = OctreeIndexedSampler(
            octree_depth=depth,
            num_sampling_modules=pre.num_sampling_modules,
            approximate=pre.approximate,
            seed=pre.seed,
        )
        sampling = sampler.sample(cloud, num_samples, octree=octree)

        breakdown = LatencyBreakdown()
        breakdown.add("octree_build", self.octree_build_unit.seconds_for(octree.stats))
        breakdown.add(
            "table_transfer",
            self.interconnect.octree_table_transfer_seconds(table.total_bits()),
        )
        breakdown.add(
            "downsampling",
            self.downsampling_unit.seconds_per_frame(depth, num_samples),
        )

        onchip = ois_onchip_megabits(
            num_table_entries=len(table),
            entry_bits=table.entry_bits(),
            num_samples=num_samples,
        )
        budget = OnChipMemoryModel(
            capacity_megabits=self.config.system.onchip_memory_megabits
        )
        budget.allocate("octree_table_and_spt", onchip)

        return PreprocessingResult(
            sampled=sampling.sampled,
            sampling=sampling,
            octree=octree,
            octree_table=table,
            breakdown=breakdown,
            onchip_megabits=onchip,
        )


@dataclass
class InferenceExecution:
    """Output of the Inference Engine for one down-sampled input."""

    forward: ForwardResult
    report: InferenceReport
    breakdown: LatencyBreakdown
    gather_run_stats: Dict[str, object] = field(default_factory=dict)

    def total_seconds(self) -> float:
        return self.report.total_seconds()

    def predicted_labels(self) -> np.ndarray:
        return self.forward.predicted_class()


@dataclass
class InferenceEngine:
    """Data Structuring Unit (VEG) + Feature Computation Unit (DLA)."""

    config: HgPCNConfig = field(default_factory=HgPCNConfig)
    accelerator: HgPCNInferenceAccelerator = field(
        default_factory=HgPCNInferenceAccelerator
    )
    task: str = "classification"
    num_classes: Optional[int] = None

    def process(self, sampled: PointCloud) -> InferenceExecution:
        """Run the PCN on one down-sampled input cloud."""
        inf = self.config.inference
        # The gathering grid is built over the down-sampled input; this is
        # the octree leaf level the DSU walks (the raw-frame octree built by
        # the Pre-processing Engine indexes the same space, so reusing it is
        # an amortisation the paper points out -- the grid here is tiny).
        depth = suggest_depth(sampled.num_points)
        grid = VoxelGrid.build(sampled, depth)
        gatherer = VoxelExpandedGatherer(
            depth=depth,
            semi_approximate=inf.semi_approximate,
            seed=inf.seed,
        )
        model = build_model_for_task(
            self.task,
            input_size=sampled.num_points,
            gatherer=gatherer,
            input_feature_channels=sampled.num_feature_channels,
            neighbors=min(inf.neighbors_per_centroid, max(1, sampled.num_points // 2)),
            seed=inf.seed,
        )
        forward = model.forward(sampled)
        workload = extract_workload(forward)

        # Collect the measured VEG statistics per SA layer for the DSU model.
        run_stats: Dict[str, object] = {}
        for trace in forward.sa_traces:
            if trace.gather is not None and "run_stats" in trace.gather.info:
                run_stats[trace.name] = trace.gather.info["run_stats"]

        spec = InferenceWorkloadSpec(
            dataset="custom",
            task=self.task,
            input_size=sampled.num_points,
            neighbors=inf.neighbors_per_centroid,
            input_feature_channels=sampled.num_feature_channels,
        )
        report = self.accelerator.inference_report(
            spec, measured_run_stats=run_stats or None
        )
        return InferenceExecution(
            forward=forward,
            report=report,
            breakdown=report.breakdown,
            gather_run_stats=run_stats,
        )

    def workload_counters(self, execution: InferenceExecution) -> OpCounters:
        """Aggregate data structuring counters of one execution."""
        workload = extract_workload(execution.forward)
        return workload.data_structuring
