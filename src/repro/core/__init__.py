"""Core abstractions: configuration, operation counters, and the engines.

The two engines mirror Figure 1(b) / Figure 4 of the paper:

* :class:`~repro.core.engine.PreprocessingEngine` = Octree-build Unit (CPU)
  + Down-sampling Unit (FPGA) running the OIS method.
* :class:`~repro.core.engine.InferenceEngine` = Data Structuring Unit +
  Feature Computation Unit (both on the FPGA).
* :class:`~repro.core.pipeline.HgPCNSystem` wires them together into the
  end-to-end service evaluated in Section VII-E.
"""

from repro.core.config import (
    HgPCNConfig,
    InferenceEngineConfig,
    PreprocessingConfig,
    SystemConfig,
)
from repro.core.engine import InferenceEngine, PreprocessingEngine
from repro.core.metrics import LatencyBreakdown, OpCounters, PhaseLatency
from repro.core.pipeline import EndToEndResult, HgPCNSystem

from repro import registry

registry.register("engine", "preprocessing", PreprocessingEngine)
registry.register("engine", "inference", InferenceEngine)
registry.register("engine", "system", HgPCNSystem)

__all__ = [
    "EndToEndResult",
    "HgPCNConfig",
    "HgPCNSystem",
    "InferenceEngine",
    "InferenceEngineConfig",
    "LatencyBreakdown",
    "OpCounters",
    "PhaseLatency",
    "PreprocessingConfig",
    "PreprocessingEngine",
    "SystemConfig",
]
