"""Configuration dataclasses for the HgPCN system and its engines.

All tunables that Section VII varies (octree depth, sampled-point count K,
neighbor count k, systolic-array geometry, voxel-level parallelism) live
here so experiments are described declaratively and the benchmark harness can
sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class PreprocessingConfig:
    """Configuration of the Pre-processing Engine (Section V).

    Attributes
    ----------
    num_samples:
        K, the fixed number of points the frame is down-sampled to (the input
        size column of Table I, e.g. 1024 or 4096).
    octree_depth:
        Depth of the octree built by the Octree-build Unit.  ``None`` lets
        the engine pick a depth from the frame size via
        :func:`repro.geometry.voxelgrid.suggest_depth`.
    num_sampling_modules:
        Degree of voxel-level parallelism in the Down-sampling Unit
        (Figure 7b deploys eight Sampling Modules, one per child octant).
    approximate:
        Enable the "approximate OIS-based FPS" future-work variant
        (Section VIII-A): near the leaf level a random point of the farthest
        node substitutes for the exact farthest point.
    seed:
        Seed-point / tie-breaking RNG seed for reproducible sampling.
    """

    num_samples: int = 4096
    octree_depth: Optional[int] = None
    num_sampling_modules: int = 8
    approximate: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if self.num_sampling_modules <= 0:
            raise ValueError("num_sampling_modules must be positive")
        if self.octree_depth is not None and self.octree_depth < 1:
            raise ValueError("octree_depth must be >= 1 when given")


@dataclass(frozen=True)
class InferenceEngineConfig:
    """Configuration of the Inference Engine (Section VI).

    Attributes
    ----------
    num_centroids:
        Number of central points picked for the first set-abstraction layer.
    neighbors_per_centroid:
        k, the gathering size of the data structuring step (paper example:
        32).
    systolic_rows / systolic_cols:
        Geometry of the Feature Computation Unit's systolic array.  The
        paper's comparisons use 16x16 for all accelerators.
    gather_method:
        ``"knn"`` or ``"ballquery"`` -- which neighbor definition the data
        structuring step implements.
    ball_radius:
        Radius used when ``gather_method == "ballquery"``.
    semi_approximate:
        Enable the "semi-approximate VEG" future-work variant
        (Section VIII-A): the last expansion shell is sampled randomly
        instead of sorted.
    random_centroids:
        Pick central points randomly (the paper does this for the Figure 14
        comparison to match Mesorasi); otherwise FPS-style centroids.
    """

    num_centroids: int = 512
    neighbors_per_centroid: int = 32
    systolic_rows: int = 16
    systolic_cols: int = 16
    gather_method: str = "knn"
    ball_radius: float = 0.2
    semi_approximate: bool = False
    random_centroids: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_centroids <= 0:
            raise ValueError("num_centroids must be positive")
        if self.neighbors_per_centroid <= 0:
            raise ValueError("neighbors_per_centroid must be positive")
        if self.systolic_rows <= 0 or self.systolic_cols <= 0:
            raise ValueError("systolic array dimensions must be positive")
        if self.gather_method not in ("knn", "ballquery"):
            raise ValueError("gather_method must be 'knn' or 'ballquery'")
        if self.ball_radius <= 0:
            raise ValueError("ball_radius must be positive")


@dataclass(frozen=True)
class SystemConfig:
    """Platform-level parameters shared by both engines."""

    #: Name of the host CPU device profile (see ``hardware.devices``).
    cpu_profile: str = "xeon_w2255"
    #: Name of the FPGA device profile.
    fpga_profile: str = "arria10_gx"
    #: Bytes per stored scalar (single precision in the prototype).
    bytes_per_scalar: int = 4
    #: On-chip memory budget of the FPGA in megabits (Arria 10 GX 1150: 65).
    onchip_memory_megabits: float = 65.0

    def __post_init__(self) -> None:
        if self.bytes_per_scalar <= 0:
            raise ValueError("bytes_per_scalar must be positive")
        if self.onchip_memory_megabits <= 0:
            raise ValueError("onchip_memory_megabits must be positive")


@dataclass(frozen=True)
class HgPCNConfig:
    """Full configuration of one HgPCN instance."""

    preprocessing: PreprocessingConfig = field(default_factory=PreprocessingConfig)
    inference: InferenceEngineConfig = field(default_factory=InferenceEngineConfig)
    system: SystemConfig = field(default_factory=SystemConfig)

    @classmethod
    def for_task(cls, input_size: int, neighbors: int = 32) -> "HgPCNConfig":
        """Convenience constructor matching a Table I row.

        ``input_size`` is the down-sampled input size (1024 / 2048 / 4096 /
        16384); centroids follow PointNet++'s convention of one quarter of
        the input size for the first set-abstraction layer.
        """
        return cls(
            preprocessing=PreprocessingConfig(num_samples=input_size),
            inference=InferenceEngineConfig(
                num_centroids=max(1, input_size // 4),
                neighbors_per_centroid=neighbors,
            ),
        )
