"""FrameBatch: the batch-native unit of execution.

The serving path used to hand frames through the engines one at a time;
``FrameBatch`` makes a *stack of same-shaped frames* the value that travels
instead.  It bundles the per-frame :class:`~repro.geometry.pointcloud.PointCloud`
objects (still needed by per-frame stages: octree build, sampling, neighbor
gathering, traces) with the stacked ``(B, N, 3)`` coordinate tensor and the
optional stacked ``(B, N, F)`` feature tensor that the batched network
forward consumes.

The shape contract is strict: every frame in a batch has the same point
count and the same feature layout (all frames carry features of the same
width, or none do).  :meth:`Session.run_batch` plans its shape groups into
such batches; :func:`group_clouds` is the reusable planner for anyone else
holding a mixed list of clouds.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.pointcloud import PointCloud
from repro.kernels import frame_offsets, stack_frames


@dataclass
class FrameBatch:
    """A stack of same-shaped point-cloud frames.

    Attributes
    ----------
    clouds:
        The B member frames, in batch order.
    points:
        ``(B, N, 3)`` stacked coordinates (views of the member clouds'
        arrays where possible -- treat as read-only).
    features:
        ``(B, N, F)`` stacked features, or ``None`` when the member clouds
        carry coordinates only.
    """

    clouds: List[PointCloud]
    points: np.ndarray = field(repr=False)
    features: Optional[np.ndarray] = field(default=None, repr=False)

    @classmethod
    def from_clouds(cls, clouds: Sequence[PointCloud]) -> "FrameBatch":
        """Stack ``clouds`` into a batch, validating the shape contract."""
        clouds = list(clouds)
        if not clouds:
            raise ValueError("cannot build a FrameBatch from zero frames")
        first = clouds[0]
        for i, cloud in enumerate(clouds):
            if cloud.num_points != first.num_points:
                raise ValueError(
                    f"frame {i} has {cloud.num_points} points, expected "
                    f"{first.num_points}; group same-shaped frames first"
                )
            if cloud.num_feature_channels != first.num_feature_channels:
                raise ValueError(
                    f"frame {i} has {cloud.num_feature_channels} feature "
                    f"channels, expected {first.num_feature_channels}"
                )
        points = stack_frames([cloud.points for cloud in clouds])
        features = None
        if first.has_features:
            features = stack_frames([cloud.features for cloud in clouds])
        return cls(clouds=clouds, points=points, features=features)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.clouds)

    def __iter__(self):
        return iter(self.clouds)

    @property
    def num_frames(self) -> int:
        return len(self.clouds)

    @property
    def num_points(self) -> int:
        """Points per frame (every member has the same count)."""
        return int(self.points.shape[1])

    @property
    def num_feature_channels(self) -> int:
        if self.features is None:
            return 0
        return int(self.features.shape[2])

    def frame(self, index: int) -> PointCloud:
        return self.clouds[index]

    # ------------------------------------------------------------------
    def flat_points(self) -> np.ndarray:
        """``(B * N, 3)`` view of the stacked coordinates."""
        return self.points.reshape(-1, 3)

    def flat_features(self) -> Optional[np.ndarray]:
        """``(B * N, F)`` view of the stacked features, or ``None``."""
        if self.features is None:
            return None
        return self.features.reshape(-1, self.features.shape[2])

    def flat_offsets(self) -> np.ndarray:
        """Per-frame row offsets into the flattened stack.

        ``per_frame_rows + flat_offsets()[b, None]`` converts frame-local
        index arrays into rows of :meth:`flat_points` /
        :meth:`flat_features`, so B per-frame gathers collapse into one.
        """
        return frame_offsets(self.num_frames, self.num_points)


def group_clouds(
    clouds: Sequence[PointCloud],
) -> List[Tuple[List[int], FrameBatch]]:
    """Partition ``clouds`` into same-shaped batches, preserving order.

    Returns ``(indices, batch)`` pairs where ``indices`` are the positions
    of the batch members in the input sequence; groups appear in
    first-occurrence order and members keep their relative order, matching
    the grouping discipline of :meth:`Session.run_batch`.
    """
    grouped: "OrderedDict[Tuple[int, int], List[int]]" = OrderedDict()
    for i, cloud in enumerate(clouds):
        key = (cloud.num_points, cloud.num_feature_channels)
        grouped.setdefault(key, []).append(i)
    return [
        (indices, FrameBatch.from_clouds([clouds[i] for i in indices]))
        for indices in grouped.values()
    ]
