"""Operation counters and latency records.

Every functional algorithm in the library (FPS, OIS, KNN, VEG, the PointNet++
forward pass, ...) reports what it *did* in an :class:`OpCounters` record:
host-memory traffic, on-chip traffic, distance computations, comparison /
sort operations, Hamming-distance (XOR) operations, octree node visits, and
multiply-accumulates.  The hardware and device models then turn those counts
into latency estimates, which keeps the "what work was done" and "how fast a
given platform does it" concerns separate — the same separation the paper
draws between algorithm (OIS/VEG) and implementation (CPU vs FPGA).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, List, Mapping


@dataclass
class OpCounters:
    """Counts of the primitive operations an algorithm performed."""

    #: Reads of point records / intermediate data from host (off-chip) memory.
    host_memory_reads: int = 0
    #: Writes of point records / intermediate data to host memory.
    host_memory_writes: int = 0
    #: Reads from on-chip (BRAM / cache-resident) structures such as the
    #: Octree-Table or the sampled-point table.
    onchip_reads: int = 0
    #: Writes to on-chip structures.
    onchip_writes: int = 0
    #: Euclidean distance computations between two 3-D points.
    distance_computations: int = 0
    #: Pairwise comparisons performed by sorting / top-k selection.
    compare_ops: int = 0
    #: XOR + popcount operations on m-codes (hardware Sampling Modules).
    hamming_ops: int = 0
    #: Octree / Octree-Table node visits.
    node_visits: int = 0
    #: Multiply-accumulate operations (feature computation).
    mac_ops: int = 0
    #: Bytes moved over the host<->accelerator link (MMIO / DMA).
    interconnect_bytes: int = 0

    # ------------------------------------------------------------------
    def merged_with(self, other: "OpCounters") -> "OpCounters":
        """Element-wise sum of two counter records."""
        merged = OpCounters()
        for f in fields(OpCounters):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged

    def add(self, other: "OpCounters") -> None:
        """In-place element-wise accumulation."""
        for f in fields(OpCounters):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def total_host_memory_accesses(self) -> int:
        return self.host_memory_reads + self.host_memory_writes

    def total_onchip_accesses(self) -> int:
        return self.onchip_reads + self.onchip_writes

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(OpCounters)}

    def scaled(self, factor: float) -> "OpCounters":
        """Counters multiplied by ``factor`` (used by analytic extrapolation)."""
        scaled = OpCounters()
        for f in fields(OpCounters):
            setattr(scaled, f.name, int(round(getattr(self, f.name) * factor)))
        return scaled

    @classmethod
    def sum(cls, records: Iterable["OpCounters"]) -> "OpCounters":
        total = cls()
        for record in records:
            total.add(record)
        return total


@dataclass(frozen=True)
class PhaseLatency:
    """Latency of one named phase of the pipeline, in seconds."""

    phase: str
    seconds: float

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3


@dataclass
class LatencyBreakdown:
    """An ordered collection of phase latencies (Figure 3 / Figure 16 style)."""

    phases: List[PhaseLatency] = field(default_factory=list)

    def add(self, phase: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        self.phases.append(PhaseLatency(phase=phase, seconds=seconds))

    def total_seconds(self) -> float:
        return sum(p.seconds for p in self.phases)

    def seconds_for(self, phase: str) -> float:
        return sum(p.seconds for p in self.phases if p.phase == phase)

    def fractions(self) -> Dict[str, float]:
        """Fraction of total time per phase name (phases may repeat)."""
        total = self.total_seconds()
        if total == 0:
            return {p.phase: 0.0 for p in self.phases}
        result: Dict[str, float] = {}
        for p in self.phases:
            result[p.phase] = result.get(p.phase, 0.0) + p.seconds / total
        return result

    def as_dict(self) -> Dict[str, float]:
        result: Dict[str, float] = {}
        for p in self.phases:
            result[p.phase] = result.get(p.phase, 0.0) + p.seconds
        return result

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, float]) -> "LatencyBreakdown":
        breakdown = cls()
        for phase, seconds in mapping.items():
            breakdown.add(phase, seconds)
        return breakdown


def speedup(baseline_seconds: float, optimized_seconds: float) -> float:
    """Baseline / optimised latency ratio, guarded against divide-by-zero."""
    if optimized_seconds <= 0:
        raise ValueError("optimized latency must be positive")
    return baseline_seconds / optimized_seconds
