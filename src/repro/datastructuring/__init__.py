"""Data structuring (neighbor gathering) methods for the inference phase.

Before the feature computation of a PCN layer, each central point must
gather its neighborhood to form the "input feature map" (Section II/VI).
This subpackage provides:

* :class:`~repro.datastructuring.knn.BruteForceKNN` -- the traditional
  all-pairs k-nearest-neighbor gathering.
* :class:`~repro.datastructuring.ballquery.BallQueryGatherer` -- ball-query
  gathering, the other common PCN neighbor definition.
* :class:`~repro.datastructuring.kdtree.KDTreeGatherer` -- a k-d-tree
  baseline in the spirit of QuickNN-style accelerators (exact result,
  tree-guided search).
* :class:`~repro.datastructuring.veg.VoxelExpandedGatherer` -- the paper's
  Voxel-Expanded Gathering (VEG) method, which uses octree voxel shells to
  shrink the sorting workload to the last expansion shell only.
"""

from repro import registry
from repro.datastructuring.ballquery import BallQueryGatherer
from repro.datastructuring.base import Gatherer, GatherResult
from repro.datastructuring.kdtree import KDTreeGatherer
from repro.datastructuring.knn import BruteForceKNN, knn_counter_model
from repro.datastructuring.veg import VEGStageStats, VoxelExpandedGatherer

registry.register("gatherer", "knn", BruteForceKNN)
registry.register("gatherer", "ballquery", BallQueryGatherer)
registry.register("gatherer", "kdtree", KDTreeGatherer)
registry.register("gatherer", "veg", VoxelExpandedGatherer)

__all__ = [
    "BallQueryGatherer",
    "BruteForceKNN",
    "Gatherer",
    "GatherResult",
    "KDTreeGatherer",
    "VEGStageStats",
    "VoxelExpandedGatherer",
    "knn_counter_model",
]
