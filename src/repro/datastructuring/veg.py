"""Voxel-Expanded Gathering (VEG) -- the paper's data structuring method.

For each central point (Section VI, Figure 8):

1. **FP** fetch the central point and its m-code;
2. **LV** locate the voxel containing it;
3. **VE** expand voxel shells outward (touching voxels first, then the next
   ring, ...) until the expanded voxels contain at least K points;
4. **GP** gather all points of the *inner* shells directly -- they are taken
   as neighbors without any distance computation;
5. **ST** sort only the points of the last expansion shell by distance to the
   central point and keep however many are still needed;
6. **BF** emit the K gathered points to the feature-computation input buffer.

The sorting workload therefore shrinks from "the whole input cloud" (what
brute-force KNN / PointACC's Mapping Unit sorts) to the last shell only,
which is the reduction plotted in Figure 15.

The semi-approximate variant of Section VIII-A replaces step 5 with a random
pick from the last shell, removing the remaining distance computations at a
small accuracy cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.metrics import OpCounters
from repro.datastructuring.base import Gatherer, GatherResult
from repro.geometry.pointcloud import PointCloud
from repro.geometry.voxelgrid import VoxelGrid, suggest_depth


@dataclass
class VEGStageStats:
    """Per-centroid statistics of one VEG gathering (Figure 15/16 inputs).

    Attributes
    ----------
    expansions:
        Number of voxel expansions n performed (0 means the seed voxel alone
        already held K points).
    inner_points:
        Points gathered for free from shells 0..n-1 (``N0 + ... + N(n-1)``).
    last_shell_points:
        Points in the final shell Vn that had to be distance-sorted (``Nn``).
    sorted_candidates:
        Number of candidates that actually entered the sorter (equals
        ``last_shell_points`` for the exact method, 0 for semi-approximate).
    voxels_visited:
        Number of voxel lookups performed during the expansion.
    """

    expansions: int = 0
    inner_points: int = 0
    last_shell_points: int = 0
    sorted_candidates: int = 0
    voxels_visited: int = 0


@dataclass
class VEGRunStats:
    """Aggregate VEG statistics over all centroids of one run."""

    per_centroid: List[VEGStageStats] = field(default_factory=list)

    def total_sorted_candidates(self) -> int:
        return sum(s.sorted_candidates for s in self.per_centroid)

    def total_inner_points(self) -> int:
        return sum(s.inner_points for s in self.per_centroid)

    def mean_expansions(self) -> float:
        if not self.per_centroid:
            return 0.0
        return float(np.mean([s.expansions for s in self.per_centroid]))

    def mean_sorted_candidates(self) -> float:
        if not self.per_centroid:
            return 0.0
        return float(np.mean([s.sorted_candidates for s in self.per_centroid]))


class VoxelExpandedGatherer(Gatherer):
    """VEG gathering over a uniform voxel grid (the octree leaf level).

    Parameters
    ----------
    depth:
        Octree/grid depth; ``None`` chooses one from the input size so leaf
        voxels hold a handful of points.
    semi_approximate:
        Enable the semi-approximate variant (random picks from the last
        shell instead of distance sorting).
    ball_radius:
        When given, gather in ball-query mode: the expansion stops once the
        shells cover the ball of this radius, candidates outside the radius
        are dropped, and groups short of K are padded with the nearest point
        (the PointNet++ ball-query convention).  The paper notes VEG
        "can efficiently support commonly used DS methods, e.g. KNN and BQ";
        this is the BQ path.
    seed:
        RNG seed for the semi-approximate variant.
    """

    name = "veg"

    def __init__(
        self,
        depth: Optional[int] = None,
        semi_approximate: bool = False,
        ball_radius: Optional[float] = None,
        seed: int = 0,
    ):
        if ball_radius is not None and ball_radius <= 0:
            raise ValueError("ball_radius must be positive when given")
        self._depth = depth
        self._semi_approximate = semi_approximate
        self._ball_radius = ball_radius
        self._seed = seed

    # ------------------------------------------------------------------
    def gather(
        self,
        cloud: PointCloud,
        centroid_indices: np.ndarray,
        neighbors: int,
        grid: Optional[VoxelGrid] = None,
    ) -> GatherResult:
        """Gather neighbors; optionally reuse a pre-built ``grid``.

        Reusing the grid models HgPCN's amortisation of the octree built by
        the Pre-processing Engine.
        """
        self._validate(cloud, centroid_indices, neighbors)
        centroid_indices = np.asarray(centroid_indices, dtype=np.intp)
        rng = np.random.default_rng(self._seed)

        depth = self._depth or suggest_depth(cloud.num_points)
        if grid is None:
            grid = VoxelGrid.build(cloud, depth)
        else:
            depth = grid.depth

        counters = OpCounters()
        run_stats = VEGRunStats()
        points = cloud.points
        max_radius = grid.resolution  # expansion cannot exceed the grid size

        rows = np.empty((centroid_indices.shape[0], neighbors), dtype=np.intp)
        for row, centroid_index in enumerate(centroid_indices):
            stats = VEGStageStats()
            target = points[centroid_index]
            # Stage FP + LV: fetch the central point and locate its voxel.
            counters.onchip_reads += 1
            center_code = grid.voxel_of_point(int(centroid_index))
            counters.node_visits += 1

            if self._ball_radius is not None:
                rows[row] = self._gather_ball(
                    grid, points, target, center_code, int(centroid_index),
                    neighbors, counters, stats,
                )
                run_stats.per_centroid.append(stats)
                continue

            # Stage VE: expand shells until >= K points are covered.
            gathered: List[np.ndarray] = []
            gathered_count = 0
            shells: List[np.ndarray] = []
            radius = 0
            while gathered_count < neighbors and radius <= max_radius:
                shell_codes = grid.shell_codes(center_code, radius)
                stats.voxels_visited += max(1, len(shell_codes))
                counters.node_visits += max(1, len(shell_codes))
                if shell_codes:
                    shell_points = np.concatenate(
                        [grid.points_in_voxel(code) for code in shell_codes]
                    )
                else:
                    shell_points = np.zeros(0, dtype=np.intp)
                shells.append(shell_points)
                gathered_count += shell_points.shape[0]
                radius += 1
            stats.expansions = max(0, len(shells) - 1)

            # Stage GP: inner shells are taken wholesale.
            inner = (
                np.concatenate(shells[:-1]) if len(shells) > 1
                else np.zeros(0, dtype=np.intp)
            )
            last_shell = shells[-1] if shells else np.zeros(0, dtype=np.intp)
            stats.inner_points = int(inner.shape[0])
            stats.last_shell_points = int(last_shell.shape[0])
            counters.host_memory_reads += int(inner.shape[0])

            still_needed = neighbors - inner.shape[0]
            if still_needed <= 0:
                # The inner shells alone overshot (can only happen when the
                # seed voxel itself holds >= K points); keep the nearest K
                # of the seed-voxel points, which requires sorting them.
                candidates = inner
                dist = ((points[candidates] - target) ** 2).sum(axis=1)
                counters.distance_computations += candidates.shape[0]
                counters.compare_ops += candidates.shape[0]
                stats.sorted_candidates = int(candidates.shape[0])
                order = np.argsort(dist)[:neighbors]
                selection = candidates[order]
            else:
                # Stage ST: sort only the last shell.
                if self._semi_approximate:
                    stats.sorted_candidates = 0
                    if last_shell.shape[0] <= still_needed:
                        tail = last_shell
                    else:
                        tail = rng.choice(
                            last_shell, size=still_needed, replace=False
                        )
                    counters.host_memory_reads += int(tail.shape[0])
                else:
                    dist = ((points[last_shell] - target) ** 2).sum(axis=1)
                    counters.distance_computations += last_shell.shape[0]
                    counters.compare_ops += last_shell.shape[0]
                    counters.host_memory_reads += int(last_shell.shape[0])
                    stats.sorted_candidates = int(last_shell.shape[0])
                    order = np.argsort(dist)[:still_needed]
                    tail = last_shell[order]
                selection = np.concatenate([inner, tail])
                if selection.shape[0] < neighbors:
                    # Grid exhausted before K points were found (tiny clouds
                    # or boundary centroids in the semi-approximate mode):
                    # pad with the nearest gathered point, mirroring the
                    # ball-query padding convention.
                    pad = np.full(
                        neighbors - selection.shape[0],
                        selection[0] if selection.shape[0] else centroid_index,
                        dtype=np.intp,
                    )
                    selection = np.concatenate([selection, pad])

            # Stage BF: write the K gathered points to the input buffer.
            counters.onchip_writes += neighbors
            rows[row] = selection[:neighbors]
            run_stats.per_centroid.append(stats)

        return GatherResult(
            neighbor_indices=rows,
            centroid_indices=centroid_indices,
            counters=counters,
            method=self.name,
            info={
                "depth": depth,
                "semi_approximate": self._semi_approximate,
                "ball_radius": self._ball_radius,
                "run_stats": run_stats,
            },
        )

    # ------------------------------------------------------------------
    def _gather_ball(
        self,
        grid: VoxelGrid,
        points: np.ndarray,
        target: np.ndarray,
        center_code: int,
        centroid_index: int,
        neighbors: int,
        counters: OpCounters,
        stats: VEGStageStats,
    ) -> np.ndarray:
        """Ball-query gathering: expand only as far as the ball reaches.

        The number of shells needed is fixed by the ball radius and the voxel
        edge length, so the expansion never depends on the input cloud size;
        every candidate inside the covered shells is distance-checked against
        the radius and at most K of the in-ball points are kept.
        """
        radius = float(self._ball_radius)
        cell = float(grid.cell_size().min())
        shell_limit = min(grid.resolution, int(np.ceil(radius / max(cell, 1e-12))) + 1)

        candidates: List[np.ndarray] = []
        for shell in range(shell_limit + 1):
            shell_codes = grid.shell_codes(center_code, shell)
            stats.voxels_visited += max(1, len(shell_codes))
            counters.node_visits += max(1, len(shell_codes))
            if shell_codes:
                candidates.append(
                    np.concatenate([grid.points_in_voxel(c) for c in shell_codes])
                )
        stats.expansions = shell_limit
        pool = (
            np.concatenate(candidates) if candidates else np.zeros(0, dtype=np.intp)
        )

        dist = ((points[pool] - target) ** 2).sum(axis=1)
        counters.distance_computations += pool.shape[0]
        counters.compare_ops += pool.shape[0]
        counters.host_memory_reads += int(pool.shape[0])
        stats.last_shell_points = int(pool.shape[0])
        stats.sorted_candidates = int(pool.shape[0])

        inside = pool[dist <= radius**2]
        inside_dist = dist[dist <= radius**2]
        order = np.argsort(inside_dist)
        inside = inside[order]
        if inside.shape[0] >= neighbors:
            selection = inside[:neighbors]
        else:
            # PointNet++ convention: pad with the nearest in-ball point (or
            # the centroid itself when the ball is empty).
            fill_value = inside[0] if inside.shape[0] else centroid_index
            pad = np.full(neighbors - inside.shape[0], fill_value, dtype=np.intp)
            selection = np.concatenate([inside, pad])
        counters.onchip_writes += neighbors
        return selection
