"""Voxel-Expanded Gathering (VEG) -- the paper's data structuring method.

For each central point (Section VI, Figure 8):

1. **FP** fetch the central point and its m-code;
2. **LV** locate the voxel containing it;
3. **VE** expand voxel shells outward (touching voxels first, then the next
   ring, ...) until the expanded voxels contain at least K points;
4. **GP** gather all points of the *inner* shells directly -- they are taken
   as neighbors without any distance computation;
5. **ST** sort only the points of the last expansion shell by distance to the
   central point and keep however many are still needed;
6. **BF** emit the K gathered points to the feature-computation input buffer.

The sorting workload therefore shrinks from "the whole input cloud" (what
brute-force KNN / PointACC's Mapping Unit sorts) to the last shell only,
which is the reduction plotted in Figure 15.

The semi-approximate variant of Section VIII-A replaces step 5 with a random
pick from the last shell, removing the remaining distance computations at a
small accuracy cost.

The expansion itself is batched across centroids: each round encodes the
whole Chebyshev stencil for every still-active centroid in one vectorised
pass (:meth:`repro.geometry.voxelgrid.VoxelGrid.shell_positions_batch`),
gathers all bucket contents with one ragged gather, and computes the
last-shell distances in one shot.  Results -- neighbor rows, counters, and
per-centroid stage statistics -- are bit-identical to the retained
per-centroid scalar reference (:func:`repro.kernels.reference.veg_scalar`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.metrics import OpCounters
from repro.datastructuring.base import Gatherer, GatherResult
from repro.geometry.pointcloud import PointCloud
from repro.geometry.voxelgrid import VoxelGrid, suggest_depth
from repro.kernels import decode_cells, gather_ragged, segment_boundaries


@dataclass
class VEGStageStats:
    """Per-centroid statistics of one VEG gathering (Figure 15/16 inputs).

    Attributes
    ----------
    expansions:
        Number of voxel expansions n performed (0 means the seed voxel alone
        already held K points).
    inner_points:
        Points gathered for free from shells 0..n-1 (``N0 + ... + N(n-1)``).
    last_shell_points:
        Points in the final shell Vn that had to be distance-sorted (``Nn``).
    sorted_candidates:
        Number of candidates that actually entered the sorter (equals
        ``last_shell_points`` for the exact method, 0 for semi-approximate).
    voxels_visited:
        Number of voxel lookups performed during the expansion.
    """

    expansions: int = 0
    inner_points: int = 0
    last_shell_points: int = 0
    sorted_candidates: int = 0
    voxels_visited: int = 0


@dataclass
class VEGRunStats:
    """Aggregate VEG statistics over all centroids of one run."""

    per_centroid: List[VEGStageStats] = field(default_factory=list)

    def total_sorted_candidates(self) -> int:
        return sum(s.sorted_candidates for s in self.per_centroid)

    def total_inner_points(self) -> int:
        return sum(s.inner_points for s in self.per_centroid)

    def mean_expansions(self) -> float:
        if not self.per_centroid:
            return 0.0
        return float(np.mean([s.expansions for s in self.per_centroid]))

    def mean_sorted_candidates(self) -> float:
        if not self.per_centroid:
            return 0.0
        return float(np.mean([s.sorted_candidates for s in self.per_centroid]))


@dataclass
class _ExpansionPool:
    """Flattened candidate points of a batched shell expansion.

    ``flat_points[row_bounds[i] : row_bounds[i+1]]`` are centroid ``i``'s
    candidates, ordered by shell radius then stencil enumeration then
    bucket order -- exactly the concatenation order of the scalar
    per-centroid expansion.
    """

    flat_points: np.ndarray
    point_radius: np.ndarray
    row_bounds: np.ndarray
    last_radius: np.ndarray
    voxels_visited: np.ndarray


class VoxelExpandedGatherer(Gatherer):
    """VEG gathering over a uniform voxel grid (the octree leaf level).

    Parameters
    ----------
    depth:
        Octree/grid depth; ``None`` chooses one from the input size so leaf
        voxels hold a handful of points.
    semi_approximate:
        Enable the semi-approximate variant (random picks from the last
        shell instead of distance sorting).
    ball_radius:
        When given, gather in ball-query mode: the expansion stops once the
        shells cover the ball of this radius, candidates outside the radius
        are dropped, and groups short of K are padded with the nearest point
        (the PointNet++ ball-query convention).  The paper notes VEG
        "can efficiently support commonly used DS methods, e.g. KNN and BQ";
        this is the BQ path.
    seed:
        RNG seed for the semi-approximate variant.
    """

    name = "veg"

    def __init__(
        self,
        depth: Optional[int] = None,
        semi_approximate: bool = False,
        ball_radius: Optional[float] = None,
        seed: int = 0,
    ):
        if ball_radius is not None and ball_radius <= 0:
            raise ValueError("ball_radius must be positive when given")
        self._depth = depth
        self._semi_approximate = semi_approximate
        self._ball_radius = ball_radius
        self._seed = seed

    # ------------------------------------------------------------------
    def gather(
        self,
        cloud: PointCloud,
        centroid_indices: np.ndarray,
        neighbors: int,
        grid: Optional[VoxelGrid] = None,
    ) -> GatherResult:
        """Gather neighbors; optionally reuse a pre-built ``grid``.

        Reusing the grid models HgPCN's amortisation of the octree built by
        the Pre-processing Engine.
        """
        self._validate(cloud, centroid_indices, neighbors)
        centroid_indices = np.asarray(centroid_indices, dtype=np.intp)
        rng = np.random.default_rng(self._seed)

        depth = self._depth or suggest_depth(cloud.num_points)
        if grid is None:
            grid = VoxelGrid.build(cloud, depth)
        else:
            depth = grid.depth

        counters = OpCounters()
        run_stats = VEGRunStats()
        num_centroids = centroid_indices.shape[0]

        # Stage FP + LV for every centroid: fetch the central point and
        # locate its voxel.
        center_codes = grid.codes[centroid_indices]
        center_cells = decode_cells(center_codes, depth)
        counters.onchip_reads += num_centroids
        counters.node_visits += num_centroids

        if self._ball_radius is not None:
            rows = self._gather_ball_batch(
                grid, cloud, centroid_indices, center_cells, neighbors,
                counters, run_stats,
            )
        else:
            rows = self._gather_knn_batch(
                grid, cloud, centroid_indices, center_cells, neighbors,
                rng, counters, run_stats,
            )

        return GatherResult(
            neighbor_indices=rows,
            centroid_indices=centroid_indices,
            counters=counters,
            method=self.name,
            info={
                "depth": depth,
                "semi_approximate": self._semi_approximate,
                "ball_radius": self._ball_radius,
                "run_stats": run_stats,
            },
        )

    # ------------------------------------------------------------------
    def _expand(
        self,
        grid: VoxelGrid,
        center_cells: np.ndarray,
        target_counts: Optional[np.ndarray],
        max_radius: int,
        counters: OpCounters,
    ) -> _ExpansionPool:
        """Batched stage VE: expand shells for all centroids at once.

        Per round, every still-active centroid's Chebyshev stencil is
        encoded and looked up in one pass.  A centroid stays active while
        its gathered total is below ``target_counts`` (or, when that is
        ``None``, until ``max_radius`` is exhausted -- the ball-query
        variant, whose shell count is fixed up front).
        """
        num_centroids = center_cells.shape[0]
        active = np.arange(num_centroids, dtype=np.intp)
        gathered = np.zeros(num_centroids, dtype=np.int64)
        last_radius = np.zeros(num_centroids, dtype=np.int64)
        voxels_visited = np.zeros(num_centroids, dtype=np.int64)

        row_records: List[np.ndarray] = []
        position_records: List[np.ndarray] = []
        radius_records: List[np.ndarray] = []

        radius = 0
        while active.size and radius <= max_radius:
            positions, found = grid.shell_positions_batch(
                center_cells[active], radius
            )
            shell_voxels = found.sum(axis=1)
            shell_points = np.where(found, grid.counts[positions], 0).sum(axis=1)
            visited = np.maximum(1, shell_voxels)
            voxels_visited[active] += visited
            counters.node_visits += int(visited.sum())
            gathered[active] += shell_points

            rows_flat = np.repeat(active, shell_voxels)
            row_records.append(rows_flat)
            position_records.append(positions[found])
            radius_records.append(
                np.full(rows_flat.shape[0], radius, dtype=np.int64)
            )

            if target_counts is None:
                last_radius[active] = radius
            else:
                done = gathered[active] >= target_counts[active]
                last_radius[active[done]] = radius
                active = active[~done]
            radius += 1
        if target_counts is not None and active.size:
            # Grid exhausted before the targets were met; the final shell
            # appended is the one at max_radius.
            last_radius[active] = radius - 1

        rows_all = np.concatenate(row_records) if row_records else np.zeros(0, dtype=np.intp)
        positions_all = np.concatenate(position_records) if position_records else np.zeros(0, dtype=np.intp)
        radius_all = np.concatenate(radius_records) if radius_records else np.zeros(0, dtype=np.int64)

        # Group the visited voxels by centroid; the stable sort preserves the
        # radius-then-stencil enumeration order inside each group, so the
        # flattened candidates match the scalar shell concatenation exactly.
        grouped = np.argsort(rows_all, kind="stable")
        rows_sorted = rows_all[grouped]
        positions_sorted = positions_all[grouped]
        radius_sorted = radius_all[grouped]

        flat_points, voxel_segment = gather_ragged(
            grid.order,
            grid.starts[positions_sorted],
            grid.counts[positions_sorted],
        )
        point_row = rows_sorted[voxel_segment]
        point_radius = radius_sorted[voxel_segment]
        row_bounds = segment_boundaries(point_row, num_centroids)
        return _ExpansionPool(
            flat_points=flat_points,
            point_radius=point_radius,
            row_bounds=row_bounds,
            last_radius=last_radius,
            voxels_visited=voxels_visited,
        )

    # ------------------------------------------------------------------
    def _gather_knn_batch(
        self,
        grid: VoxelGrid,
        cloud: PointCloud,
        centroid_indices: np.ndarray,
        center_cells: np.ndarray,
        neighbors: int,
        rng: np.random.Generator,
        counters: OpCounters,
        run_stats: VEGRunStats,
    ) -> np.ndarray:
        points = cloud.points
        num_centroids = centroid_indices.shape[0]
        targets = np.full(num_centroids, neighbors, dtype=np.int64)
        pool = self._expand(
            grid, center_cells, targets, grid.resolution, counters
        )

        # Within a centroid's slice the candidates are radius-ascending, so
        # the inner shells are a prefix and the last shell the suffix.
        total_counts = np.diff(pool.row_bounds)
        point_rows = np.repeat(
            np.arange(num_centroids, dtype=np.intp), total_counts
        )
        is_last = pool.point_radius == pool.last_radius[point_rows]
        last_counts = np.bincount(
            point_rows[is_last], minlength=num_centroids
        ).astype(np.int64)
        inner_counts = total_counts - last_counts
        counters.host_memory_reads += int(inner_counts.sum())

        # Stage ST: distances for the last-shell candidates only, in one
        # vectorised pass over every centroid's shell.
        exact = not self._semi_approximate
        if exact:
            last_points = pool.flat_points[is_last]
            last_rows = point_rows[is_last]
            last_dists = (
                (points[last_points] - points[centroid_indices[last_rows]]) ** 2
            ).sum(axis=1)
            last_bounds = segment_boundaries(last_rows, num_centroids)
            counters.distance_computations += int(last_counts.sum())
            counters.compare_ops += int(last_counts.sum())
            counters.host_memory_reads += int(last_counts.sum())
        else:
            last_dists = np.zeros(0)
            last_bounds = np.zeros(num_centroids + 1, dtype=np.intp)

        rows = np.empty((num_centroids, neighbors), dtype=np.intp)
        for row in range(num_centroids):
            start, end = pool.row_bounds[row], pool.row_bounds[row + 1]
            inner_n = int(inner_counts[row])
            inner = pool.flat_points[start : start + inner_n]
            last_shell = pool.flat_points[start + inner_n : end]
            still_needed = neighbors - inner_n

            if exact:
                dist = last_dists[last_bounds[row] : last_bounds[row + 1]]
                order = np.argsort(dist)[:still_needed]
                tail = last_shell[order]
            else:
                if last_shell.shape[0] <= still_needed:
                    tail = last_shell
                else:
                    tail = rng.choice(
                        last_shell, size=still_needed, replace=False
                    )
                counters.host_memory_reads += int(tail.shape[0])
            selection = np.concatenate([inner, tail])
            if selection.shape[0] < neighbors:
                # Grid exhausted before K points were found (tiny clouds or
                # boundary centroids in the semi-approximate mode): pad with
                # the nearest gathered point, mirroring the ball-query
                # padding convention.
                pad = np.full(
                    neighbors - selection.shape[0],
                    selection[0] if selection.shape[0] else centroid_indices[row],
                    dtype=np.intp,
                )
                selection = np.concatenate([selection, pad])

            # Stage BF: write the K gathered points to the input buffer.
            counters.onchip_writes += neighbors
            rows[row] = selection[:neighbors]
            run_stats.per_centroid.append(
                VEGStageStats(
                    expansions=int(pool.last_radius[row]),
                    inner_points=inner_n,
                    last_shell_points=int(last_counts[row]),
                    sorted_candidates=int(last_counts[row]) if exact else 0,
                    voxels_visited=int(pool.voxels_visited[row]),
                )
            )
        return rows

    # ------------------------------------------------------------------
    def _gather_ball_batch(
        self,
        grid: VoxelGrid,
        cloud: PointCloud,
        centroid_indices: np.ndarray,
        center_cells: np.ndarray,
        neighbors: int,
        counters: OpCounters,
        run_stats: VEGRunStats,
    ) -> np.ndarray:
        """Ball-query gathering: expand only as far as the ball reaches.

        The number of shells is fixed by the ball radius and the voxel edge
        length, so the expansion never depends on the input cloud size;
        every candidate inside the covered shells is distance-checked
        against the radius and at most K of the in-ball points are kept.
        """
        points = cloud.points
        num_centroids = centroid_indices.shape[0]
        radius = float(self._ball_radius)
        cell = float(grid.cell_size().min())
        shell_limit = min(
            grid.resolution, int(np.ceil(radius / max(cell, 1e-12))) + 1
        )
        pool = self._expand(grid, center_cells, None, shell_limit, counters)

        pool_counts = np.diff(pool.row_bounds)
        point_rows = np.repeat(
            np.arange(num_centroids, dtype=np.intp), pool_counts
        )
        dists = (
            (points[pool.flat_points] - points[centroid_indices[point_rows]])
            ** 2
        ).sum(axis=1)
        counters.distance_computations += int(pool_counts.sum())
        counters.compare_ops += int(pool_counts.sum())
        counters.host_memory_reads += int(pool_counts.sum())

        radius_sq = radius**2
        rows = np.empty((num_centroids, neighbors), dtype=np.intp)
        for row in range(num_centroids):
            start, end = pool.row_bounds[row], pool.row_bounds[row + 1]
            candidates = pool.flat_points[start:end]
            dist = dists[start:end]
            inside = candidates[dist <= radius_sq]
            inside_dist = dist[dist <= radius_sq]
            order = np.argsort(inside_dist)
            inside = inside[order]
            if inside.shape[0] >= neighbors:
                selection = inside[:neighbors]
            else:
                # PointNet++ convention: pad with the nearest in-ball point
                # (or the centroid itself when the ball is empty).
                fill_value = (
                    inside[0] if inside.shape[0] else centroid_indices[row]
                )
                pad = np.full(
                    neighbors - inside.shape[0], fill_value, dtype=np.intp
                )
                selection = np.concatenate([inside, pad])
            counters.onchip_writes += neighbors
            rows[row] = selection
            run_stats.per_centroid.append(
                VEGStageStats(
                    expansions=shell_limit,
                    inner_points=0,
                    last_shell_points=int(pool_counts[row]),
                    sorted_candidates=int(pool_counts[row]),
                    voxels_visited=int(pool.voxels_visited[row]),
                )
            )
        return rows
