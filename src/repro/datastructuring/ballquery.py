"""Ball-query gathering.

PointNet++'s set-abstraction layers use ball query (all points within a
radius, capped at k, padding with the nearest point when fewer exist) rather
than pure KNN.  The workload profile is the same as brute-force KNN -- every
centroid scans the whole input cloud -- so it shares the counter model; only
the membership rule differs.
"""

from __future__ import annotations

import numpy as np

from repro.datastructuring.base import Gatherer, GatherResult
from repro.datastructuring.knn import knn_counter_model
from repro.geometry.pointcloud import PointCloud


class BallQueryGatherer(Gatherer):
    """Gather up to k points within ``radius`` of each centroid."""

    name = "ballquery"

    def __init__(self, radius: float = 0.2):
        if radius <= 0:
            raise ValueError("radius must be positive")
        self._radius = radius

    @property
    def radius(self) -> float:
        return self._radius

    def gather(
        self,
        cloud: PointCloud,
        centroid_indices: np.ndarray,
        neighbors: int,
    ) -> GatherResult:
        self._validate(cloud, centroid_indices, neighbors)
        centroid_indices = np.asarray(centroid_indices, dtype=np.intp)
        points = cloud.points
        radius_sq = self._radius**2

        rows = np.empty((centroid_indices.shape[0], neighbors), dtype=np.intp)
        truncated = 0
        padded = 0
        chunk = 256
        for start in range(0, centroid_indices.shape[0], chunk):
            block_idx = centroid_indices[start : start + chunk]
            block = points[block_idx]
            diff = block[:, None, :] - points[None, :, :]
            dist = (diff**2).sum(axis=-1)
            order = np.argsort(dist, axis=1)
            sorted_dist = np.take_along_axis(dist, order, axis=1)
            for r in range(block.shape[0]):
                inside = order[r][sorted_dist[r] <= radius_sq]
                if inside.shape[0] >= neighbors:
                    if inside.shape[0] > neighbors:
                        truncated += 1
                    rows[start + r] = inside[:neighbors]
                else:
                    # PointNet++ convention: pad with the nearest point so the
                    # group always has exactly k entries.
                    padded += 1
                    fill = np.full(neighbors, order[r][0], dtype=np.intp)
                    fill[: inside.shape[0]] = inside
                    rows[start + r] = fill

        counters = knn_counter_model(
            cloud.num_points, centroid_indices.shape[0], neighbors
        )
        return GatherResult(
            neighbor_indices=rows,
            centroid_indices=centroid_indices,
            counters=counters,
            method=self.name,
            info={
                "radius": self._radius,
                "groups_truncated": truncated,
                "groups_padded": padded,
            },
        )
