"""Ball-query gathering.

PointNet++'s set-abstraction layers use ball query (all points within a
radius, capped at k, padding with the nearest point when fewer exist) rather
than pure KNN.  The workload profile is the same as brute-force KNN -- every
centroid scans the whole input cloud -- so it shares the counter model; only
the membership rule differs.
"""

from __future__ import annotations

import numpy as np

from repro.datastructuring.base import Gatherer, GatherResult
from repro.datastructuring.knn import knn_counter_model
from repro.geometry.pointcloud import PointCloud
from repro.kernels import distance_chunk_rows, pairwise_sq_dists


class BallQueryGatherer(Gatherer):
    """Gather up to k points within ``radius`` of each centroid."""

    name = "ballquery"

    def __init__(self, radius: float = 0.2):
        if radius <= 0:
            raise ValueError("radius must be positive")
        self._radius = radius

    @property
    def radius(self) -> float:
        return self._radius

    def gather(
        self,
        cloud: PointCloud,
        centroid_indices: np.ndarray,
        neighbors: int,
    ) -> GatherResult:
        self._validate(cloud, centroid_indices, neighbors)
        centroid_indices = np.asarray(centroid_indices, dtype=np.intp)
        points = cloud.points
        radius_sq = self._radius**2

        rows = np.empty((centroid_indices.shape[0], neighbors), dtype=np.intp)
        truncated = 0
        padded = 0
        column = np.arange(neighbors, dtype=np.intp)
        chunk = distance_chunk_rows(cloud.num_points)
        for start in range(0, centroid_indices.shape[0], chunk):
            block_idx = centroid_indices[start : start + chunk]
            dist = pairwise_sq_dists(points[block_idx], points)
            order = np.argsort(dist, axis=1)
            sorted_dist = np.take_along_axis(dist, order, axis=1)
            # The sorted distances are ascending, so in-radius membership is
            # a per-row prefix: the whole block reduces to a column-index
            # compare against the per-row in-radius count, padding with the
            # nearest point (PointNet++ convention: groups always have
            # exactly k entries) -- no per-row inner loop.
            inside_counts = (sorted_dist <= radius_sq).sum(axis=1)
            truncated += int((inside_counts > neighbors).sum())
            padded += int((inside_counts < neighbors).sum())
            rows[start : start + block_idx.shape[0]] = np.where(
                column[None, :] < inside_counts[:, None],
                order[:, :neighbors],
                order[:, :1],
            )

        counters = knn_counter_model(
            cloud.num_points, centroid_indices.shape[0], neighbors
        )
        return GatherResult(
            neighbor_indices=rows,
            centroid_indices=centroid_indices,
            counters=counters,
            method=self.name,
            info={
                "radius": self._radius,
                "groups_truncated": truncated,
                "groups_padded": padded,
            },
        )
