"""Brute-force k-nearest-neighbor gathering (the traditional DS method).

For every central point, compute the distance to every other input point and
keep the k nearest.  This is what PCN frameworks do on CPUs/GPUs and what
PointACC's Mapping Unit accelerates with a full-range bitonic sort; it is the
reference against which VEG's workload reduction (Figure 15) is measured.
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import OpCounters
from repro.datastructuring.base import Gatherer, GatherResult
from repro.geometry.pointcloud import PointCloud
from repro.kernels import distance_chunk_rows, grouped_topk, pairwise_sq_dists


def knn_counter_model(
    num_points: int, num_centroids: int, neighbors: int
) -> OpCounters:
    """Analytic counts of brute-force KNN gathering.

    Per centroid: ``N - 1`` distance computations (reads of every other
    point), plus a top-k selection modelled as a single ranking pass over the
    ``N - 1`` distances (one comparison each -- the same unit the paper uses
    when it says the sorter of PointACC works "over the entire input point
    cloud").
    """
    counters = OpCounters()
    per_centroid = max(0, num_points - 1)
    counters.distance_computations = num_centroids * per_centroid
    counters.host_memory_reads = num_centroids * per_centroid
    counters.compare_ops = num_centroids * per_centroid
    counters.host_memory_writes = num_centroids * neighbors
    return counters


class BruteForceKNN(Gatherer):
    """Exact KNN gathering by full distance scan."""

    name = "knn-bruteforce"

    def __init__(self, include_self: bool = True):
        """``include_self``: whether the centroid itself may appear among its
        neighbors (PointNet++ grouping keeps it)."""
        self._include_self = include_self

    def gather(
        self,
        cloud: PointCloud,
        centroid_indices: np.ndarray,
        neighbors: int,
    ) -> GatherResult:
        self._validate(cloud, centroid_indices, neighbors)
        centroid_indices = np.asarray(centroid_indices, dtype=np.intp)
        points = cloud.points
        centroids = points[centroid_indices]

        # Chunk over centroids so the (M, N, 3) difference block stays inside
        # the shared kernel memory budget.
        neighbor_rows = np.empty(
            (centroid_indices.shape[0], neighbors), dtype=np.intp
        )
        chunk = distance_chunk_rows(cloud.num_points)
        for start in range(0, centroid_indices.shape[0], chunk):
            block = centroids[start : start + chunk]
            dist = pairwise_sq_dists(block, points)
            if not self._include_self:
                rows = np.arange(block.shape[0])
                dist[rows, centroid_indices[start : start + chunk]] = np.inf
            # grouped_topk orders the k argpartition survivors by distance so
            # the nearest appears first (useful for ball-query-style caps).
            neighbor_rows[start : start + block.shape[0]] = grouped_topk(
                dist, neighbors
            )

        counters = knn_counter_model(
            cloud.num_points, centroid_indices.shape[0], neighbors
        )
        return GatherResult(
            neighbor_indices=neighbor_rows,
            centroid_indices=centroid_indices,
            counters=counters,
            method=self.name,
        )
