"""k-d-tree neighbor gathering baseline, array-backed.

QuickNN and similar accelerators (Section II-B, "second type") organise the
input cloud in a k-d tree and prune the search.  The exact-search variant
implemented here returns the same neighbor sets as brute-force KNN while
visiting far fewer points, which makes it a useful middle ground between the
brute-force baseline and VEG when studying where the workload reduction comes
from.  The tree is built from scratch (no scipy dependency) so node visits
and distance computations can be counted faithfully.

The tree is stored as parallel node arrays (axis/split/children/leaf
ranges) over one permutation buffer instead of per-node Python objects: the
build is an iterative stack over index-array segments partitioned with
NumPy masks, and each query processes whole leaves with one squared-distance
block (the :func:`repro.kernels.distance.pairwise_sq_dists` operation order,
inlined for the single-query shape) plus a stable-sort top-k merge.  Both are bit-identical -- rows *and* counters -- to the frozen
recursive/heap implementation in
:func:`repro.kernels.reference.kdtree_gather_scalar`, except that exact
distance ties straddling the k-th boundary may resolve to a different (but
equidistant) neighbor index: the reference heap evicts the smallest index
among tied maxima while the merge keeps earliest arrivals.  Counters and
the per-row distance multisets agree even then (same note as the FPS
sqrt-tie caveat in :func:`repro.kernels.reference.fps_scalar`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.metrics import OpCounters
from repro.datastructuring.base import Gatherer, GatherResult
from repro.geometry.pointcloud import PointCloud


@dataclass
class _KDArrays:
    """One built k-d tree: an index-array permutation plus flat node tables.

    Node ``n`` is a leaf iff ``axes[n] < 0``; leaves own the permutation
    slice ``perm[starts[n] : starts[n] + counts[n]]``.  Internal nodes
    split on ``axes[n]`` at ``splits[n]`` with children ``lefts[n]`` /
    ``rights[n]``.  The per-node metadata is kept as plain Python lists:
    the traversal inner loop reads one scalar per node, where list indexing
    beats NumPy scalar indexing severalfold; the bulk data (``perm``, and
    the points it indexes) stays in arrays.
    """

    axes: List[int]
    splits: List[float]
    lefts: List[int]
    rights: List[int]
    starts: List[int]
    counts: List[int]
    perm: np.ndarray


def _build_arrays(points: np.ndarray, leaf_size: int) -> _KDArrays:
    """Iterative median-split build over one index buffer.

    Each stack entry is a ``(start, end, depth, node)`` segment of ``perm``;
    the segment is stably partitioned in place around the median of its
    split axis, which reproduces the recursive build's subtrees exactly
    (masking an index array preserves relative order on both sides).
    """
    num_points = points.shape[0]
    perm = np.arange(num_points, dtype=np.intp)

    axes: List[int] = []
    splits: List[float] = []
    lefts: List[int] = []
    rights: List[int] = []
    starts: List[int] = []
    counts: List[int] = []

    def new_node() -> int:
        axes.append(-1)
        splits.append(0.0)
        lefts.append(-1)
        rights.append(-1)
        starts.append(0)
        counts.append(0)
        return len(axes) - 1

    root = new_node()
    stack: List[Tuple[int, int, int, int]] = [(0, num_points, 0, root)]
    while stack:
        start, end, depth, node = stack.pop()
        if end - start <= leaf_size:
            starts[node] = start
            counts[node] = end - start
            continue
        segment = perm[start:end]
        axis = depth % 3
        values = points[segment, axis]
        # Median via a direct partition: bit-identical to ``np.median``
        # (same partition kths, same (a + b) / 2 midpoint) at a fraction of
        # its per-call dispatch overhead, which dominates tree construction.
        size = values.shape[0]
        half = size >> 1
        if size & 1:
            median = float(np.partition(values, half)[half])
        else:
            part = np.partition(values, (half - 1, half))
            median = float((part[half - 1] + part[half]) / 2.0)
        left_mask = values <= median
        if left_mask.all() or not left_mask.any():
            # Degenerate split (all values equal): fall back to a leaf.
            starts[node] = start
            counts[node] = end - start
            continue
        left_seg = segment[left_mask]
        right_seg = segment[~left_mask]
        perm[start : start + left_seg.shape[0]] = left_seg
        perm[start + left_seg.shape[0] : end] = right_seg
        axes[node] = axis
        splits[node] = median
        lefts[node] = new_node()
        rights[node] = new_node()
        middle = start + left_seg.shape[0]
        stack.append((middle, end, depth + 1, rights[node]))
        stack.append((start, middle, depth + 1, lefts[node]))

    return _KDArrays(
        axes=axes,
        splits=splits,
        lefts=lefts,
        rights=rights,
        starts=starts,
        counts=counts,
        perm=perm,
    )


class KDTreeGatherer(Gatherer):
    """Exact KNN via a from-scratch, array-backed k-d tree."""

    name = "kdtree"

    #: Stack tags of the iterative depth-first query.
    _VISIT = 0
    _FAR_CHECK = 1

    def __init__(self, leaf_size: int = 16):
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self._leaf_size = leaf_size

    # ------------------------------------------------------------------
    def _query(
        self,
        tree: _KDArrays,
        points: np.ndarray,
        target: np.ndarray,
        neighbors: int,
        counters: OpCounters,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pruned depth-first search; returns the candidate (dists, indices).

        Candidates are kept in arrival order and merged with each leaf block
        by a stable sort on distance, so the kept set matches the reference
        heap whenever the k-th boundary distance is unique (see the tie
        caveat in the module docstring).

        The traversal bookkeeping runs on plain Python lists/floats (node
        metadata is small; NumPy scalar indexing would dominate the walk)
        while each leaf is processed as one array block.
        """
        axes, splits = tree.axes, tree.splits
        lefts, rights = tree.lefts, tree.rights
        starts, counts = tree.starts, tree.counts
        target_xyz = target.tolist()

        cand_dists = np.empty(0, dtype=np.float64)
        cand_index = np.empty(0, dtype=np.intp)
        cand_size = 0
        kth = np.inf
        node_visits = 0
        compare_ops = 0
        point_reads = 0

        # Stack entries: (_VISIT, node, 0.0) runs a subtree; (_FAR_CHECK,
        # node, plane_dist) replays the reference's post-recursion pruning
        # decision for the far child after the near subtree completed.
        stack: List[Tuple[int, int, float]] = [(self._VISIT, 0, 0.0)]
        while stack:
            tag, node, diff = stack.pop()
            if tag == self._FAR_CHECK:
                # Prune the far side unless the splitting plane is closer
                # than the current k-th neighbor.
                compare_ops += 1
                if cand_size < neighbors or diff * diff < kth:
                    stack.append((self._VISIT, node, 0.0))
                continue

            node_visits += 1
            axis = axes[node]
            if axis < 0:
                start = starts[node]
                count = counts[node]
                leaf_points = tree.perm[start : start + count]
                # One block of squared distances per leaf; same elementwise
                # operation order as ``kernels.pairwise_sq_dists`` (and the
                # reference's per-point sum), inlined to skip the broadcast
                # machinery of the (1, C) query shape.
                diff = points[leaf_points] - target
                dists = (diff**2).sum(axis=-1)
                point_reads += count
                # The reference pushes while the heap has free slots (no
                # comparison charged) and compares once per point after it
                # fills.
                free = neighbors - cand_size
                if free < count:
                    compare_ops += count - max(0, free)

                if free <= 0 and float(dists.min()) >= kth:
                    # The reference rejects every point with dist >= kth
                    # (strict ``<`` replacement), so a leaf whose nearest
                    # point does not beat the k-th candidate changes nothing.
                    continue
                cand_dists = np.concatenate([cand_dists, dists])
                cand_index = np.concatenate([cand_index, leaf_points])
                if cand_index.shape[0] > neighbors:
                    keep = np.argsort(cand_dists, kind="stable")[:neighbors]
                    keep.sort()  # preserve arrival order among the kept
                    cand_dists = cand_dists[keep]
                    cand_index = cand_index[keep]
                cand_size = cand_index.shape[0]
                if cand_size >= neighbors:
                    kth = float(cand_dists.max())
                continue

            plane_dist = target_xyz[axis] - splits[node]
            if plane_dist <= 0:
                near, far = lefts[node], rights[node]
            else:
                near, far = rights[node], lefts[node]
            stack.append((self._FAR_CHECK, far, plane_dist))
            stack.append((self._VISIT, near, 0.0))

        counters.node_visits += node_visits
        counters.compare_ops += compare_ops
        counters.distance_computations += point_reads
        counters.host_memory_reads += point_reads
        return cand_dists, cand_index

    # ------------------------------------------------------------------
    def gather(
        self,
        cloud: PointCloud,
        centroid_indices: np.ndarray,
        neighbors: int,
    ) -> GatherResult:
        self._validate(cloud, centroid_indices, neighbors)
        centroid_indices = np.asarray(centroid_indices, dtype=np.intp)
        points = cloud.points
        counters = OpCounters()

        tree = _build_arrays(points, self._leaf_size)
        # Tree construction: one streaming pass over the points per level is
        # the usual accounting; charge a single read per point here since the
        # build is offline relative to the per-centroid queries.
        counters.host_memory_reads += cloud.num_points

        rows = np.empty((centroid_indices.shape[0], neighbors), dtype=np.intp)
        for i, centroid in enumerate(centroid_indices):
            dists, index = self._query(
                tree, points, points[centroid], neighbors, counters
            )
            rows[i] = index[np.lexsort((index, dists))]
        return GatherResult(
            neighbor_indices=rows,
            centroid_indices=centroid_indices,
            counters=counters,
            method=self.name,
            info={"leaf_size": self._leaf_size},
        )
