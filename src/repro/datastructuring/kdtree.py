"""k-d-tree neighbor gathering baseline, batched frontier traversal.

QuickNN and similar accelerators (Section II-B, "second type") organise the
input cloud in a k-d tree and prune the search.  The exact-search variant
implemented here returns the same neighbor sets as brute-force KNN while
visiting far fewer points, which makes it a useful middle ground between the
brute-force baseline and VEG when studying where the workload reduction comes
from.  The tree is built from scratch (no scipy dependency) so node visits
and distance computations can be counted faithfully.

The tree is stored as parallel node arrays (axis/split/children/leaf ranges)
over one permutation buffer; the build is an iterative stack over
index-array segments partitioned with NumPy masks.  Queries are **batched**:
instead of walking the tree once per centroid, all centroids traverse it
together as index arrays --

1. a *descent phase* moves the whole centroid frontier from the root to its
   home leaves level by level, recording the far sibling of every split
   crossed, then seeds each centroid's candidate set from its home leaf
   (one ragged distance block for all frontier leaves);
2. a *backtrack phase* processes the recorded far-subtree visits
   level-synchronously: each round prunes the pending pairs against the
   current k-th-neighbor bounds (the same splitting-plane rule as the
   per-centroid walk), merges all leaf pairs' distance blocks into the
   per-centroid top-k candidates with one ``lexsort``
   (:func:`repro.kernels.topk_per_segment`), and descends the surviving
   internal pairs one level, emitting near children unconditionally and far
   children with their plane distances.

The returned neighbor rows are bit-identical to the frozen per-centroid
walk (:func:`repro.kernels.reference.kdtree_gather_per_centroid`, which is
itself row- and counter-identical to the recursive/heap reference
:func:`repro.kernels.reference.kdtree_gather_scalar`), except that exact
distance ties straddling the k-th boundary may resolve to a different (but
equidistant) neighbor index.  Tie survival depends on leaf *arrival order*
in both paths -- once a centroid's candidate set is full, the strict
``dist < kth`` admission gate rejects later-arriving equidistant points (a
within-merge tie additionally resolves to the smaller index) -- and the
batched traversal visits leaves in a different order than the depth-first
walk, so the kept equidistant indices can differ.  Per-row distance
multisets agree even then (same note as the FPS sqrt-tie caveat in
:func:`repro.kernels.reference.fps_scalar`).  Operation *counters*
are reported with the same semantics (node visits, plane-prune compares,
per-point distance reads) but their values legitimately differ from the
per-centroid walk: the level-synchronous traversal makes its pruning
decisions with slightly staler k-th bounds, so it visits a few more nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.metrics import OpCounters
from repro.datastructuring.base import Gatherer, GatherResult
from repro.geometry.pointcloud import PointCloud
from repro.kernels import gather_ragged, partition_by_mask, topk_per_segment


@dataclass
class _KDArrays:
    """One built k-d tree: an index-array permutation plus flat node tables.

    Node ``n`` is a leaf iff ``axes[n] < 0``; leaves own the permutation
    slice ``perm[starts[n] : starts[n] + counts[n]]``.  Internal nodes
    split on ``axes[n]`` at ``splits[n]`` with children ``lefts[n]`` /
    ``rights[n]``.  All node metadata is kept as NumPy arrays so the
    batched traversal can index whole frontiers at once.
    """

    axes: np.ndarray
    splits: np.ndarray
    lefts: np.ndarray
    rights: np.ndarray
    starts: np.ndarray
    counts: np.ndarray
    perm: np.ndarray


def _build_arrays(points: np.ndarray, leaf_size: int) -> _KDArrays:
    """Iterative median-split build over one index buffer.

    Each stack entry is a ``(start, end, depth, node)`` segment of ``perm``;
    the segment is stably partitioned in place around the median of its
    split axis, which reproduces the recursive build's subtrees exactly
    (masking an index array preserves relative order on both sides).
    """
    num_points = points.shape[0]
    perm = np.arange(num_points, dtype=np.intp)

    axes: List[int] = []
    splits: List[float] = []
    lefts: List[int] = []
    rights: List[int] = []
    starts: List[int] = []
    counts: List[int] = []

    def new_node() -> int:
        axes.append(-1)
        splits.append(0.0)
        lefts.append(-1)
        rights.append(-1)
        starts.append(0)
        counts.append(0)
        return len(axes) - 1

    root = new_node()
    stack: List[Tuple[int, int, int, int]] = [(0, num_points, 0, root)]
    while stack:
        start, end, depth, node = stack.pop()
        if end - start <= leaf_size:
            starts[node] = start
            counts[node] = end - start
            continue
        segment = perm[start:end]
        axis = depth % 3
        values = points[segment, axis]
        # Median via a direct partition: bit-identical to ``np.median``
        # (same partition kths, same (a + b) / 2 midpoint) at a fraction of
        # its per-call dispatch overhead, which dominates tree construction.
        size = values.shape[0]
        half = size >> 1
        if size & 1:
            median = float(np.partition(values, half)[half])
        else:
            part = np.partition(values, (half - 1, half))
            median = float((part[half - 1] + part[half]) / 2.0)
        left_mask = values <= median
        if left_mask.all() or not left_mask.any():
            # Degenerate split (all values equal): fall back to a leaf.
            starts[node] = start
            counts[node] = end - start
            continue
        left_seg = segment[left_mask]
        right_seg = segment[~left_mask]
        perm[start : start + left_seg.shape[0]] = left_seg
        perm[start + left_seg.shape[0] : end] = right_seg
        axes[node] = axis
        splits[node] = median
        lefts[node] = new_node()
        rights[node] = new_node()
        middle = start + left_seg.shape[0]
        stack.append((middle, end, depth + 1, rights[node]))
        stack.append((start, middle, depth + 1, lefts[node]))

    return _KDArrays(
        axes=np.asarray(axes, dtype=np.int64),
        splits=np.asarray(splits, dtype=np.float64),
        lefts=np.asarray(lefts, dtype=np.intp),
        rights=np.asarray(rights, dtype=np.intp),
        starts=np.asarray(starts, dtype=np.intp),
        counts=np.asarray(counts, dtype=np.intp),
        perm=perm,
    )


class KDTreeGatherer(Gatherer):
    """Exact KNN via a from-scratch k-d tree with a batched frontier query."""

    name = "kdtree"

    def __init__(self, leaf_size: int = 16):
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self._leaf_size = leaf_size

    # ------------------------------------------------------------------
    def _merge_leaves(
        self,
        tree: _KDArrays,
        points: np.ndarray,
        targets: np.ndarray,
        pair_targets: np.ndarray,
        pair_nodes: np.ndarray,
        neighbors: int,
        cand_dists: np.ndarray,
        cand_index: np.ndarray,
        cand_counts: np.ndarray,
        kth: np.ndarray,
        counters: OpCounters,
    ) -> None:
        """Merge the leaf blocks of ``(target, leaf)`` pairs into the top-k.

        One ragged gather produces every pair's point rows, one distance
        block scores them, and one per-segment top-k merge
        (:func:`repro.kernels.topk_per_segment`) updates all affected
        centroids' candidate sets and k-th bounds at once.
        """
        if pair_targets.shape[0] == 0:
            return
        rows, segments = gather_ragged(
            tree.perm, tree.starts[pair_nodes], tree.counts[pair_nodes]
        )
        point_targets = pair_targets[segments]
        diff = points[rows] - targets[point_targets]
        dists = (diff**2).sum(axis=-1)
        counters.distance_computations += rows.shape[0]
        counters.host_memory_reads += rows.shape[0]

        # Candidate admission: a point can only enter a full candidate set
        # by beating its current k-th distance (strict ``<`` replacement,
        # as in the per-centroid walk); each test against a full set is one
        # comparison.
        full = cand_counts[point_targets] >= neighbors
        counters.compare_ops += int(np.count_nonzero(full))
        admit = ~full | (dists < kth[point_targets])
        if not np.any(admit):
            return
        new_targets = point_targets[admit]
        new_dists = dists[admit]
        new_rows = rows[admit]

        affected = np.unique(new_targets)
        dense = np.searchsorted(affected, new_targets)

        # Flatten the affected centroids' current candidates and re-rank
        # them together with the new entries.
        columns = np.arange(neighbors, dtype=np.intp)
        held = columns[None, :] < cand_counts[affected, None]
        held_segments = np.repeat(
            np.arange(affected.shape[0], dtype=np.intp),
            cand_counts[affected],
        )
        all_segments = np.concatenate([held_segments, dense])
        all_dists = np.concatenate([cand_dists[affected][held], new_dists])
        all_index = np.concatenate([cand_index[affected][held], new_rows])
        top_d, top_i, top_c = topk_per_segment(
            all_segments, all_dists, all_index, neighbors, affected.shape[0]
        )
        cand_dists[affected] = top_d
        cand_index[affected] = top_i
        cand_counts[affected] = top_c
        kth[affected] = np.where(
            top_c >= neighbors, top_d[:, neighbors - 1], np.inf
        )

    # ------------------------------------------------------------------
    def _query_batch(
        self,
        tree: _KDArrays,
        points: np.ndarray,
        targets: np.ndarray,
        neighbors: int,
        counters: OpCounters,
    ) -> np.ndarray:
        """Frontier-per-level exact KNN for all targets at once."""
        num_targets = targets.shape[0]
        cand_dists = np.full((num_targets, neighbors), np.inf)
        cand_index = np.full((num_targets, neighbors), -1, dtype=np.intp)
        cand_counts = np.zeros(num_targets, dtype=np.intp)
        kth = np.full(num_targets, np.inf)

        # Phase 1: descend every target to its home leaf, recording the far
        # sibling (and its splitting-plane distance) at each crossed split.
        frontier = np.arange(num_targets, dtype=np.intp)
        nodes = np.zeros(num_targets, dtype=np.intp)
        pending_targets: List[np.ndarray] = []
        pending_nodes: List[np.ndarray] = []
        pending_diffs: List[np.ndarray] = []
        while frontier.size:
            frontier_nodes = nodes[frontier]
            axis = tree.axes[frontier_nodes]
            internal = axis >= 0
            counters.node_visits += frontier.size
            (frontier, frontier_nodes, axis), _ = partition_by_mask(
                internal, frontier, frontier_nodes, axis
            )
            if not frontier.size:
                break
            diff = targets[frontier, axis] - tree.splits[frontier_nodes]
            go_left = diff <= 0
            near = np.where(
                go_left, tree.lefts[frontier_nodes], tree.rights[frontier_nodes]
            )
            far = np.where(
                go_left, tree.rights[frontier_nodes], tree.lefts[frontier_nodes]
            )
            pending_targets.append(frontier)
            pending_nodes.append(far)
            pending_diffs.append(diff)
            nodes[frontier] = near

        # Seed the candidate sets from the home leaves (already counted as
        # visits above).
        self._merge_leaves(
            tree, points, targets,
            np.arange(num_targets, dtype=np.intp), nodes,
            neighbors, cand_dists, cand_index, cand_counts, kth, counters,
        )

        # Phase 2: process the recorded far-subtree visits level by level.
        # ``unconditional`` marks near children (visited regardless, as in
        # the per-centroid walk); far pairs are plane-prune checked against
        # the current bounds first.
        if pending_targets:
            work_targets = np.concatenate(pending_targets)
            work_nodes = np.concatenate(pending_nodes)
            work_diffs = np.concatenate(pending_diffs)
        else:
            work_targets = np.zeros(0, dtype=np.intp)
            work_nodes = np.zeros(0, dtype=np.intp)
            work_diffs = np.zeros(0)
        unconditional = np.zeros(work_targets.shape[0], dtype=bool)

        while work_targets.size:
            # Prune the far side unless the splitting plane is closer than
            # the current k-th neighbor (one comparison per check).
            checked = ~unconditional
            counters.compare_ops += int(np.count_nonzero(checked))
            keep = unconditional | (
                (cand_counts[work_targets] < neighbors)
                | (work_diffs * work_diffs < kth[work_targets])
            )
            work_targets = work_targets[keep]
            work_nodes = work_nodes[keep]
            if not work_targets.size:
                break
            counters.node_visits += work_targets.size

            is_leaf = tree.axes[work_nodes] < 0
            (leaf_targets, leaf_nodes), (internal_targets, internal_nodes) = (
                partition_by_mask(is_leaf, work_targets, work_nodes)
            )
            internal_axis = tree.axes[internal_nodes]
            self._merge_leaves(
                tree, points, targets, leaf_targets, leaf_nodes, neighbors,
                cand_dists, cand_index, cand_counts, kth, counters,
            )

            if internal_targets.size:
                diff = (
                    targets[internal_targets, internal_axis]
                    - tree.splits[internal_nodes]
                )
                go_left = diff <= 0
                near = np.where(
                    go_left,
                    tree.lefts[internal_nodes],
                    tree.rights[internal_nodes],
                )
                far = np.where(
                    go_left,
                    tree.rights[internal_nodes],
                    tree.lefts[internal_nodes],
                )
                work_targets = np.concatenate([internal_targets, internal_targets])
                work_nodes = np.concatenate([near, far])
                work_diffs = np.concatenate([np.zeros(diff.shape[0]), diff])
                unconditional = np.concatenate(
                    [
                        np.ones(diff.shape[0], dtype=bool),
                        np.zeros(diff.shape[0], dtype=bool),
                    ]
                )
            else:
                work_targets = np.zeros(0, dtype=np.intp)
                work_nodes = np.zeros(0, dtype=np.intp)
                work_diffs = np.zeros(0)
                unconditional = np.zeros(0, dtype=bool)

        # Rows come out of the merge already ordered by (distance, index),
        # which is exactly the per-centroid walk's final
        # ``lexsort((index, dists))`` ordering.
        return cand_index

    # ------------------------------------------------------------------
    def gather(
        self,
        cloud: PointCloud,
        centroid_indices: np.ndarray,
        neighbors: int,
    ) -> GatherResult:
        self._validate(cloud, centroid_indices, neighbors)
        centroid_indices = np.asarray(centroid_indices, dtype=np.intp)
        points = cloud.points
        counters = OpCounters()

        tree = _build_arrays(points, self._leaf_size)
        # Tree construction: one streaming pass over the points per level is
        # the usual accounting; charge a single read per point here since the
        # build is offline relative to the batched queries.
        counters.host_memory_reads += cloud.num_points

        rows = self._query_batch(
            tree, points, points[centroid_indices], neighbors, counters
        )
        return GatherResult(
            neighbor_indices=rows,
            centroid_indices=centroid_indices,
            counters=counters,
            method=self.name,
            info={"leaf_size": self._leaf_size},
        )
