"""k-d-tree neighbor gathering baseline.

QuickNN and similar accelerators (Section II-B, "second type") organise the
input cloud in a k-d tree and prune the search.  The exact-search variant
implemented here returns the same neighbor sets as brute-force KNN while
visiting far fewer points, which makes it a useful middle ground between the
brute-force baseline and VEG when studying where the workload reduction comes
from.  The tree is built from scratch (no scipy dependency) so node visits
and distance computations can be counted faithfully.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.metrics import OpCounters
from repro.datastructuring.base import Gatherer, GatherResult
from repro.geometry.pointcloud import PointCloud


@dataclass
class _KDNode:
    """One node of the k-d tree (leaf nodes hold point indices)."""

    axis: int = -1
    split: float = 0.0
    left: Optional["_KDNode"] = None
    right: Optional["_KDNode"] = None
    indices: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.indices is not None


class KDTreeGatherer(Gatherer):
    """Exact KNN via a from-scratch k-d tree."""

    name = "kdtree"

    def __init__(self, leaf_size: int = 16):
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self._leaf_size = leaf_size

    # ------------------------------------------------------------------
    def _build(self, points: np.ndarray, indices: np.ndarray, depth: int) -> _KDNode:
        if indices.shape[0] <= self._leaf_size:
            return _KDNode(indices=indices)
        axis = depth % 3
        values = points[indices, axis]
        median = float(np.median(values))
        left_mask = values <= median
        # Degenerate split (all values equal): fall back to a leaf.
        if left_mask.all() or not left_mask.any():
            return _KDNode(indices=indices)
        return _KDNode(
            axis=axis,
            split=median,
            left=self._build(points, indices[left_mask], depth + 1),
            right=self._build(points, indices[~left_mask], depth + 1),
        )

    def _query(
        self,
        node: _KDNode,
        points: np.ndarray,
        target: np.ndarray,
        neighbors: int,
        heap: List[tuple],
        counters: OpCounters,
    ) -> None:
        counters.node_visits += 1
        if node.is_leaf:
            for idx in node.indices:
                counters.distance_computations += 1
                counters.host_memory_reads += 1
                dist = float(((points[idx] - target) ** 2).sum())
                if len(heap) < neighbors:
                    heapq.heappush(heap, (-dist, int(idx)))
                elif dist < -heap[0][0]:
                    counters.compare_ops += 1
                    heapq.heapreplace(heap, (-dist, int(idx)))
                else:
                    counters.compare_ops += 1
            return
        diff = target[node.axis] - node.split
        near, far = (node.left, node.right) if diff <= 0 else (node.right, node.left)
        self._query(near, points, target, neighbors, heap, counters)
        # Prune the far side unless the splitting plane is closer than the
        # current k-th neighbor.
        counters.compare_ops += 1
        if len(heap) < neighbors or diff * diff < -heap[0][0]:
            self._query(far, points, target, neighbors, heap, counters)

    # ------------------------------------------------------------------
    def gather(
        self,
        cloud: PointCloud,
        centroid_indices: np.ndarray,
        neighbors: int,
    ) -> GatherResult:
        self._validate(cloud, centroid_indices, neighbors)
        centroid_indices = np.asarray(centroid_indices, dtype=np.intp)
        points = cloud.points
        counters = OpCounters()

        root = self._build(points, np.arange(cloud.num_points, dtype=np.intp), 0)
        # Tree construction: one streaming pass over the points per level is
        # the usual accounting; charge a single read per point here since the
        # build is offline relative to the per-centroid queries.
        counters.host_memory_reads += cloud.num_points

        rows = np.empty((centroid_indices.shape[0], neighbors), dtype=np.intp)
        for i, centroid in enumerate(centroid_indices):
            heap: List[tuple] = []
            self._query(root, points, points[centroid], neighbors, heap, counters)
            ordered = sorted(((-d, idx) for d, idx in heap))
            rows[i] = [idx for _, idx in ordered]
        return GatherResult(
            neighbor_indices=rows,
            centroid_indices=centroid_indices,
            counters=counters,
            method=self.name,
            info={"leaf_size": self._leaf_size},
        )
