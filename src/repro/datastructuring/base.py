"""Gatherer interface and result record for the data structuring step."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np

from repro.core.metrics import OpCounters
from repro.geometry.pointcloud import PointCloud


@dataclass
class GatherResult:
    """Output of one data structuring run.

    Attributes
    ----------
    neighbor_indices:
        ``(M, K)`` array; row ``i`` holds the indices (into the input cloud)
        of the K gathered neighbors of central point ``i``.
    centroid_indices:
        ``(M,)`` indices of the central points themselves.
    counters:
        Operation counts of the run.
    method:
        Name of the gatherer.
    info:
        Method-specific extras (e.g. VEG per-stage statistics).
    """

    neighbor_indices: np.ndarray
    centroid_indices: np.ndarray
    counters: OpCounters
    method: str
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_centroids(self) -> int:
        return int(self.neighbor_indices.shape[0])

    @property
    def neighbors_per_centroid(self) -> int:
        return int(self.neighbor_indices.shape[1])

    def neighbor_sets(self) -> list[set[int]]:
        """Neighbor index rows as sets (order-independent comparisons)."""
        return [set(int(i) for i in row) for row in self.neighbor_indices]

    def grouped_coordinates(self, cloud: PointCloud) -> np.ndarray:
        """``(M, K, 3)`` gathered neighbor coordinates."""
        return cloud.points[self.neighbor_indices]

    def grouped_features(self, cloud: PointCloud) -> np.ndarray | None:
        """``(M, K, F)`` gathered neighbor features, or ``None``."""
        if cloud.features is None:
            return None
        return cloud.features[self.neighbor_indices]


class Gatherer(abc.ABC):
    """Common interface of all data structuring (neighbor gathering) methods."""

    name: str = "gatherer"

    @abc.abstractmethod
    def gather(
        self,
        cloud: PointCloud,
        centroid_indices: np.ndarray,
        neighbors: int,
    ) -> GatherResult:
        """Gather ``neighbors`` points around each centroid."""

    def _validate(
        self, cloud: PointCloud, centroid_indices: np.ndarray, neighbors: int
    ) -> None:
        if neighbors <= 0:
            raise ValueError("neighbors must be positive")
        if cloud.num_points < neighbors:
            raise ValueError(
                f"cloud has {cloud.num_points} points, cannot gather "
                f"{neighbors} neighbors"
            )
        centroid_indices = np.asarray(centroid_indices)
        if centroid_indices.ndim != 1 or centroid_indices.shape[0] == 0:
            raise ValueError("centroid_indices must be a non-empty 1-D array")
        if centroid_indices.min() < 0 or centroid_indices.max() >= cloud.num_points:
            raise ValueError("centroid index out of range")


def pick_random_centroids(
    cloud: PointCloud, num_centroids: int, seed: int = 0
) -> np.ndarray:
    """Random central-point selection.

    The paper's Figure 14 comparison uses random central-point picking for
    all accelerators because Mesorasi does; this helper is the shared
    implementation.
    """
    if num_centroids <= 0:
        raise ValueError("num_centroids must be positive")
    if num_centroids > cloud.num_points:
        raise ValueError("cannot pick more centroids than points")
    rng = np.random.default_rng(seed)
    return rng.choice(cloud.num_points, size=num_centroids, replace=False)
