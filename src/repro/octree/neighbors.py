"""Same-level voxel neighbor search, batched.

The VEG method (Section VI) expands outward from a central voxel: first the
voxels touching it (the 26-neighbourhood at Chebyshev radius 1), then the
next shell, and so on.  The paper cites Frisken & Perry's simple traversal
method for quadtrees/octrees; on a complete grid at a fixed depth the
neighbour of a voxel is obtained directly from its integer grid coordinates.

The helpers operate on m-codes so both the
:class:`~repro.octree.linear.OctreeTable` and the
:class:`~repro.geometry.voxelgrid.VoxelGrid` can use them, and they come in
two flavours: ``*_batch`` functions that expand whole code arrays in one
stencil encode (the hot path -- one ``(M, S)`` kernel call instead of ``M``
Python triple loops), and the scalar single-code wrappers, which delegate to
the batched kernels and keep the original list-of-int signatures.  Both are
bit-identical to the frozen loops in :mod:`repro.kernels.reference`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.morton import morton_decode, morton_encode
from repro.kernels import (
    chebyshev_codes,
    cube_offsets,
    isin_sorted,
    shell_codes_batch,
    stencil_codes,
)
from repro.kernels.morton import decode_cells


def _ragged_sorted(
    codes: np.ndarray, valid: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row ascending codes of the valid stencil entries.

    Returns ``(flat_codes, row_splits)``: row ``i`` of the batch holds
    ``flat_codes[row_splits[i] : row_splits[i + 1]]``, sorted ascending (SFC
    order).  Invalid entries are pushed past every real code with an int64
    sentinel, then dropped.
    """
    counts = valid.sum(axis=1)
    row_splits = np.zeros(codes.shape[0] + 1, dtype=np.intp)
    np.cumsum(counts, out=row_splits[1:])
    masked = np.where(valid, codes, np.iinfo(np.int64).max)
    ordered = np.sort(masked, axis=1)
    keep = np.arange(codes.shape[1], dtype=np.intp)[None, :] < counts[:, None]
    return ordered[keep], row_splits


def neighbor_codes_batch(
    codes: np.ndarray,
    depth: int,
    radius: int = 1,
    include_diagonal: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Chebyshev-shell neighbors of a whole code array at once.

    Array-wide variant of :func:`neighbor_codes_at_radius`: one stencil
    encode over ``(M, S)`` cells.  Returns ``(flat_codes, row_splits)``
    where centre ``i``'s neighbors are
    ``flat_codes[row_splits[i] : row_splits[i + 1]]``, sorted ascending and
    with out-of-grid voxels dropped -- per row, exactly the list the scalar
    helper returns.
    """
    if radius < 0:
        raise ValueError("radius must be >= 0")
    codes = np.asarray(codes, dtype=np.int64)
    shell, in_bounds = shell_codes_batch(
        codes, depth, radius, include_diagonal=include_diagonal
    )
    return _ragged_sorted(shell, in_bounds)


def codes_within_radius_batch(
    codes: np.ndarray, depth: int, radius: int
) -> Tuple[np.ndarray, np.ndarray]:
    """All voxel codes with Chebyshev distance <= ``radius``, batched.

    Same ``(flat_codes, row_splits)`` contract as
    :func:`neighbor_codes_batch`; each row is ascending (distinct offsets
    map to distinct voxels, so no dedup is needed).
    """
    if radius < 0:
        raise ValueError("radius must be >= 0")
    codes = np.asarray(codes, dtype=np.int64)
    cells = decode_cells(codes, depth)
    cube, in_bounds = stencil_codes(cells, cube_offsets(radius), depth)
    return _ragged_sorted(cube, in_bounds)


def filter_occupied_batch(
    codes: np.ndarray, occupied_sorted: np.ndarray
) -> np.ndarray:
    """Keep the codes present in an ascending-sorted occupied array.

    ``searchsorted`` membership (one binary search per query) replacing the
    per-call Python ``set`` of the scalar path; order preserving.
    """
    codes = np.asarray(codes, dtype=np.int64)
    return codes[isin_sorted(occupied_sorted, codes)]


# ----------------------------------------------------------------------
# Scalar single-code API (delegates to the batched kernels)
# ----------------------------------------------------------------------
def neighbor_codes(
    code: int, depth: int, include_diagonal: bool = True
) -> List[int]:
    """M-codes of the voxels touching ``code`` at the same depth.

    With ``include_diagonal`` the full 26-neighbourhood is returned (minus
    out-of-range voxels at the grid boundary); otherwise only the 6
    face-adjacent voxels.
    """
    return neighbor_codes_at_radius(
        code, depth, radius=1, include_diagonal=include_diagonal
    )


def neighbor_codes_at_radius(
    code: int,
    depth: int,
    radius: int,
    include_diagonal: bool = True,
) -> List[int]:
    """M-codes on the Chebyshev shell at ``radius`` around ``code``.

    ``radius = 0`` returns ``[code]``.  The result is sorted (SFC order) and
    excludes voxels that would fall outside the grid.
    """
    flat, _ = neighbor_codes_batch(
        np.asarray([code], dtype=np.int64),
        depth,
        radius=radius,
        include_diagonal=include_diagonal,
    )
    return [int(c) for c in flat]


def face_neighbor(code: int, depth: int, axis: int, direction: int) -> Optional[int]:
    """The face-adjacent neighbour along ``axis`` (0=x,1=y,2=z).

    ``direction`` is +1 or -1.  Returns ``None`` at the grid boundary.
    """
    if axis not in (0, 1, 2):
        raise ValueError("axis must be 0, 1 or 2")
    if direction not in (1, -1):
        raise ValueError("direction must be +1 or -1")
    coords = list(morton_decode(code, depth))
    coords[axis] += direction
    resolution = 1 << depth
    if not 0 <= coords[axis] < resolution:
        return None
    return morton_encode(coords[0], coords[1], coords[2], depth)


def chebyshev_distance(code_a: int, code_b: int, depth: int) -> int:
    """Chebyshev (shell) distance between two voxels at the same depth."""
    return int(
        chebyshev_codes(
            np.asarray([code_a], dtype=np.int64),
            np.asarray([code_b], dtype=np.int64),
            depth,
        )[0]
    )


def codes_within_radius(
    code: int, depth: int, radius: int
) -> List[int]:
    """All voxel codes with Chebyshev distance <= ``radius`` from ``code``."""
    flat, _ = codes_within_radius_batch(
        np.asarray([code], dtype=np.int64), depth, radius
    )
    return [int(c) for c in flat]


def filter_occupied(codes: Sequence[int], occupied: Sequence[int]) -> List[int]:
    """Keep only the codes present in ``occupied`` (order preserving)."""
    codes_arr = np.asarray(list(codes), dtype=np.int64)
    if codes_arr.shape[0] == 0:
        return []
    occupied_sorted = np.sort(np.asarray(list(occupied), dtype=np.int64))
    return [int(c) for c in filter_occupied_batch(codes_arr, occupied_sorted)]
