"""Same-level voxel neighbor search.

The VEG method (Section VI) expands outward from a central voxel: first the
voxels touching it (the 26-neighbourhood at Chebyshev radius 1), then the
next shell, and so on.  The paper cites Frisken & Perry's simple traversal
method for quadtrees/octrees; on a complete grid at a fixed depth the
neighbour of a voxel is obtained directly from its integer grid coordinates,
which is what these helpers do.  They operate on m-codes so both the
:class:`~repro.octree.linear.OctreeTable` and the
:class:`~repro.geometry.voxelgrid.VoxelGrid` can use them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.geometry.morton import morton_decode, morton_encode


def neighbor_codes(
    code: int, depth: int, include_diagonal: bool = True
) -> List[int]:
    """M-codes of the voxels touching ``code`` at the same depth.

    With ``include_diagonal`` the full 26-neighbourhood is returned (minus
    out-of-range voxels at the grid boundary); otherwise only the 6
    face-adjacent voxels.
    """
    return neighbor_codes_at_radius(
        code, depth, radius=1, include_diagonal=include_diagonal
    )


def neighbor_codes_at_radius(
    code: int,
    depth: int,
    radius: int,
    include_diagonal: bool = True,
) -> List[int]:
    """M-codes on the Chebyshev shell at ``radius`` around ``code``.

    ``radius = 0`` returns ``[code]``.  The result is sorted (SFC order) and
    excludes voxels that would fall outside the grid.
    """
    if radius < 0:
        raise ValueError("radius must be >= 0")
    if radius == 0:
        return [code]
    cx, cy, cz = morton_decode(code, depth)
    resolution = 1 << depth
    result: List[int] = []
    for dx in range(-radius, radius + 1):
        for dy in range(-radius, radius + 1):
            for dz in range(-radius, radius + 1):
                cheb = max(abs(dx), abs(dy), abs(dz))
                if cheb != radius:
                    continue
                if not include_diagonal and abs(dx) + abs(dy) + abs(dz) != radius:
                    continue
                ix, iy, iz = cx + dx, cy + dy, cz + dz
                if not (
                    0 <= ix < resolution
                    and 0 <= iy < resolution
                    and 0 <= iz < resolution
                ):
                    continue
                result.append(morton_encode(ix, iy, iz, depth))
    return sorted(result)


def face_neighbor(code: int, depth: int, axis: int, direction: int) -> Optional[int]:
    """The face-adjacent neighbour along ``axis`` (0=x,1=y,2=z).

    ``direction`` is +1 or -1.  Returns ``None`` at the grid boundary.
    """
    if axis not in (0, 1, 2):
        raise ValueError("axis must be 0, 1 or 2")
    if direction not in (1, -1):
        raise ValueError("direction must be +1 or -1")
    coords = list(morton_decode(code, depth))
    coords[axis] += direction
    resolution = 1 << depth
    if not 0 <= coords[axis] < resolution:
        return None
    return morton_encode(coords[0], coords[1], coords[2], depth)


def chebyshev_distance(code_a: int, code_b: int, depth: int) -> int:
    """Chebyshev (shell) distance between two voxels at the same depth."""
    ax, ay, az = morton_decode(code_a, depth)
    bx, by, bz = morton_decode(code_b, depth)
    return max(abs(ax - bx), abs(ay - by), abs(az - bz))


def codes_within_radius(
    code: int, depth: int, radius: int
) -> List[int]:
    """All voxel codes with Chebyshev distance <= ``radius`` from ``code``."""
    result: List[int] = []
    for shell in range(radius + 1):
        result.extend(neighbor_codes_at_radius(code, depth, shell))
    return sorted(set(result))


def filter_occupied(codes: Sequence[int], occupied: Sequence[int]) -> List[int]:
    """Keep only the codes present in ``occupied`` (order preserving)."""
    occupied_set = set(int(c) for c in occupied)
    return [int(c) for c in codes if int(c) in occupied_set]
