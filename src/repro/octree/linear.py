"""The Octree-Table: linearised octree for the FPGA-side units.

Section V-B: "the generated Octree will be configured into an equivalent
Octree-Table, to be transferred to and used by the Down-sampling Unit in the
FPGA.  In the Octree, the leaf nodes contain the address (or address range)
of the contained point(s)."

:class:`OctreeTable` is that flat structure, array-backed: parallel arrays
hold one row per node (m-code, level, leaf flag), a CSR block holds the
child rows of the internal nodes, and two address arrays carry the
host-memory point-slot range of every leaf.  Rows appear in pre-order
(depth-first, children in ascending octant order), exactly the layout the
FPGA table walk assumes.

:meth:`OctreeTable.from_flat` builds the whole table from the octree's flat
per-level code arrays -- pure ``searchsorted``/``lexsort`` array work that
never materialises an :class:`~repro.octree.node.OctreeNode`.
:meth:`OctreeTable.from_octree` is the compatibility constructor that walks
the pointer tree (forcing its lazy materialisation) and produces the same
arrays row for row.  :class:`OctreeTableEntry` remains as a thin per-row
view for existing consumers.

The table also knows its own on-chip footprint in bits, which is what the
Figure 13 on-chip-memory analysis measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.kernels import gather_ragged
from repro.octree.builder import Octree
from repro.octree.node import OctreeNode


@dataclass(frozen=True)
class OctreeTableEntry:
    """One row of the Octree-Table (a thin view onto the table arrays).

    Attributes
    ----------
    index:
        Row index in the table.
    code:
        The node's m-code.
    level:
        Node depth (root = 0).
    is_leaf:
        Whether the row describes a leaf voxel.
    child_indices:
        Mapping ``octant -> row index`` for internal nodes.
    address_range:
        ``(start, end)`` half-open range of host-memory point slots for leaf
        rows (in units of points, relative to the reorganised region base).
    """

    index: int
    code: int
    level: int
    is_leaf: bool
    child_indices: Dict[int, int] = field(default_factory=dict)
    address_range: Tuple[int, int] = (0, 0)

    @property
    def num_points(self) -> int:
        return self.address_range[1] - self.address_range[0]


@dataclass
class OctreeTable:
    """Flattened, array-backed octree used by the FPGA units.

    Parallel arrays (one element per table row, rows in pre-order):

    ``codes`` / ``levels`` / ``leaf_flags``
        The node m-code, depth, and leaf flag of every row.
    ``child_bounds`` / ``child_rows`` / ``child_octants``
        CSR child lists: row ``r``'s children occupy
        ``child_rows[child_bounds[r] : child_bounds[r + 1]]`` (ascending
        octant order; ``child_octants`` carries the 3-bit octant of each).
    ``addr_starts`` / ``addr_ends``
        Host-memory point-slot range of leaf rows (zeros for internal rows).
    """

    depth: int
    codes: np.ndarray = field(repr=False)
    levels: np.ndarray = field(repr=False)
    leaf_flags: np.ndarray = field(repr=False)
    child_bounds: np.ndarray = field(repr=False)
    child_rows: np.ndarray = field(repr=False)
    child_octants: np.ndarray = field(repr=False)
    addr_starts: np.ndarray = field(repr=False)
    addr_ends: np.ndarray = field(repr=False)
    #: Total points addressed by the leaf rows.
    num_points: int = 0
    root_index: int = 0
    #: Sorted leaf codes + their table rows (SFC order), for code lookup.
    _leaf_codes: np.ndarray = field(default=None, repr=False)
    _leaf_rows: np.ndarray = field(default=None, repr=False)
    #: Cached per-row view objects (built on first ``entries`` access).
    _entries: Optional[List[OctreeTableEntry]] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @classmethod
    def from_flat(cls, octree: Octree) -> "OctreeTable":
        """Build the table from the flat per-level code arrays.

        Pure array construction: the pre-order row permutation is one
        ``lexsort`` over (subtree key, level), child spans are
        ``searchsorted`` ranges of each level's codes into the next level's
        parent prefixes, and leaf address ranges are the octree's cumulative
        leaf point counts.  No :class:`OctreeNode` is ever created.
        """
        depth = octree.depth
        level_codes = octree.codes_per_level()
        sizes = np.array([c.shape[0] for c in level_codes], dtype=np.intp)
        offsets = np.zeros(depth + 2, dtype=np.intp)
        np.cumsum(sizes, out=offsets[1:])
        total = int(offsets[-1])

        all_codes = np.concatenate(level_codes)
        all_levels = np.repeat(np.arange(depth + 1, dtype=np.int64), sizes)

        # Pre-order (DFS, ascending octant) == ascending (subtree key, level)
        # where the key left-pads a node's code with zeros to leaf depth: a
        # parent shares the key of its leftmost descendant and sorts first on
        # the lower level; any other pair orders by the first differing
        # octant digit.
        keys = all_codes << (3 * (depth - all_levels))
        order = np.lexsort((all_levels, keys))
        row_of = np.empty(total, dtype=np.intp)
        row_of[order] = np.arange(total, dtype=np.intp)

        codes = all_codes[order]
        levels = all_levels[order]
        leaf_flags = levels == depth

        # Child spans: level L+1 codes are sorted, so each parent's children
        # occupy one contiguous slice of the next level's array.
        child_counts = np.zeros(total, dtype=np.intp)
        child_lo = np.zeros(total, dtype=np.intp)  # concat-space span starts
        for level in range(depth):
            parents = level_codes[level]
            child_parents = level_codes[level + 1] >> 3
            first = np.searchsorted(child_parents, parents, side="left")
            last = np.searchsorted(child_parents, parents, side="right")
            parent_rows = row_of[offsets[level] : offsets[level + 1]]
            child_lo[parent_rows] = offsets[level + 1] + first
            child_counts[parent_rows] = last - first

        child_bounds = np.zeros(total + 1, dtype=np.intp)
        np.cumsum(child_counts, out=child_bounds[1:])
        child_rows, _ = gather_ragged(row_of, child_lo, child_counts)
        child_codes, _ = gather_ragged(all_codes, child_lo, child_counts)

        # Leaf address ranges follow the SFC leaf order so the table is
        # consistent with the host-memory reorganisation produced by
        # :class:`~repro.octree.memory_layout.HostMemoryLayout`.
        bounds = octree.leaf_slot_bounds()
        leaf_rows = row_of[offsets[depth] : offsets[depth + 1]]
        addr_starts = np.zeros(total, dtype=np.intp)
        addr_ends = np.zeros(total, dtype=np.intp)
        addr_starts[leaf_rows] = bounds[:-1]
        addr_ends[leaf_rows] = bounds[1:]

        return cls(
            depth=depth,
            codes=codes,
            levels=levels,
            leaf_flags=leaf_flags,
            child_bounds=child_bounds,
            child_rows=child_rows.astype(np.intp),
            child_octants=(child_codes & 0b111).astype(np.int64),
            addr_starts=addr_starts,
            addr_ends=addr_ends,
            num_points=int(bounds[-1]),
            root_index=int(row_of[0]),
            _leaf_codes=level_codes[depth],
            _leaf_rows=leaf_rows,
        )

    @classmethod
    def from_octree(cls, octree: Octree) -> "OctreeTable":
        """Flatten a pointer-based octree into table form (compat path).

        Walks the materialised pointer tree node by node -- the pre-PR
        construction -- and packs the emitted rows into the same arrays as
        :meth:`from_flat`.  Runtime consumers use :meth:`from_flat`; this
        constructor remains for pointer-tree callers and as the behavioural
        anchor of the flat path.
        """
        # First pass: assign leaf address ranges in SFC order.
        leaf_ranges: Dict[int, Tuple[int, int]] = {}
        cursor = 0
        for leaf in octree.leaves_in_sfc_order():
            start = cursor
            cursor += leaf.num_points
            leaf_ranges[leaf.code] = (start, cursor)

        # Second pass: pre-order traversal emitting rows; children are fixed
        # up after their rows exist.
        codes: List[int] = []
        levels: List[int] = []
        leaf_flags: List[bool] = []
        children: List[Dict[int, int]] = []
        addr: List[Tuple[int, int]] = []

        def emit(node: OctreeNode) -> int:
            row = len(codes)
            codes.append(node.code)
            levels.append(node.level)
            leaf_flags.append(node.is_leaf)
            children.append({})
            addr.append(
                leaf_ranges.get(node.code, (0, 0)) if node.is_leaf else (0, 0)
            )
            for octant in node.occupied_octants():
                children[row][octant] = emit(node.children[octant])
            return row

        root_index = emit(octree.root)
        return cls._from_rows(
            depth=octree.depth,
            codes=codes,
            levels=levels,
            leaf_flags=leaf_flags,
            children=children,
            addr=addr,
            root_index=root_index,
        )

    @classmethod
    def _from_rows(
        cls,
        depth: int,
        codes: List[int],
        levels: List[int],
        leaf_flags: List[bool],
        children: List[Dict[int, int]],
        addr: List[Tuple[int, int]],
        root_index: int,
    ) -> "OctreeTable":
        """Pack per-row Python records into the parallel-array layout."""
        total = len(codes)
        child_bounds = np.zeros(total + 1, dtype=np.intp)
        child_rows: List[int] = []
        child_octants: List[int] = []
        for row, child_map in enumerate(children):
            for octant, child_row in sorted(child_map.items()):
                child_rows.append(child_row)
                child_octants.append(octant)
            child_bounds[row + 1] = len(child_rows)

        codes_arr = np.asarray(codes, dtype=np.int64)
        levels_arr = np.asarray(levels, dtype=np.int64)
        leaf_arr = np.asarray(leaf_flags, dtype=bool)
        addr_arr = np.asarray(addr, dtype=np.intp).reshape(total, 2)
        leaf_positions = np.flatnonzero(leaf_arr)
        leaf_order = np.argsort(codes_arr[leaf_positions], kind="stable")
        leaf_rows = leaf_positions[leaf_order]
        return cls(
            depth=depth,
            codes=codes_arr,
            levels=levels_arr,
            leaf_flags=leaf_arr,
            child_bounds=child_bounds,
            child_rows=np.asarray(child_rows, dtype=np.intp),
            child_octants=np.asarray(child_octants, dtype=np.int64),
            addr_starts=addr_arr[:, 0].copy(),
            addr_ends=addr_arr[:, 1].copy(),
            num_points=int(addr_arr[:, 1].max(initial=0)),
            root_index=root_index,
            _leaf_codes=codes_arr[leaf_rows],
            _leaf_rows=leaf_rows,
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.codes.shape[0])

    @property
    def num_leaves(self) -> int:
        return int(self._leaf_rows.shape[0])

    @property
    def entries(self) -> List[OctreeTableEntry]:
        """All rows as view objects (built lazily, cached)."""
        if self._entries is None:
            self._entries = [self.entry(row) for row in range(len(self))]
        return self._entries

    def entry(self, index: int) -> OctreeTableEntry:
        """Row ``index`` as a view object."""
        lo = int(self.child_bounds[index])
        hi = int(self.child_bounds[index + 1])
        return OctreeTableEntry(
            index=int(index),
            code=int(self.codes[index]),
            level=int(self.levels[index]),
            is_leaf=bool(self.leaf_flags[index]),
            child_indices={
                int(self.child_octants[i]): int(self.child_rows[i])
                for i in range(lo, hi)
            },
            address_range=(
                int(self.addr_starts[index]),
                int(self.addr_ends[index]),
            ),
        )

    def root(self) -> OctreeTableEntry:
        return self.entry(self.root_index)

    def leaf_row_for_code(self, code: int) -> int:
        """Table row of leaf ``code``, or -1 when that voxel is empty."""
        position = int(np.searchsorted(self._leaf_codes, code))
        if (
            position < self._leaf_codes.shape[0]
            and int(self._leaf_codes[position]) == int(code)
        ):
            return int(self._leaf_rows[position])
        return -1

    def leaf_entry_for_code(self, code: int) -> Optional[OctreeTableEntry]:
        row = self.leaf_row_for_code(int(code))
        return None if row < 0 else self.entry(row)

    def children_of(self, entry: OctreeTableEntry) -> List[OctreeTableEntry]:
        """Child rows of an internal entry, in SFC (octant) order."""
        lo = int(self.child_bounds[entry.index])
        hi = int(self.child_bounds[entry.index + 1])
        return [self.entry(int(self.child_rows[i])) for i in range(lo, hi)]

    def leaf_entries(self) -> List[OctreeTableEntry]:
        """All leaf rows sorted by m-code (SFC order)."""
        return [self.entry(int(row)) for row in self._leaf_rows]

    # ------------------------------------------------------------------
    # On-chip footprint (Figure 13)
    # ------------------------------------------------------------------
    def entry_bits(self) -> int:
        """Bits needed for one table row in the FPGA implementation.

        A row stores: the m-code (3 bits per level), a leaf flag, eight child
        row indices (internal rows) or a start address + count (leaf rows).
        Row indices and addresses are sized for the actual table/point count,
        rounded up to whole bits.
        """
        code_bits = 3 * self.depth
        index_bits = max(1, int(np.ceil(np.log2(max(2, len(self))))))
        address_bits = max(
            1, int(np.ceil(np.log2(max(2, self.num_points + 1))))
        )
        child_bits = 8 * index_bits
        leaf_bits = 2 * address_bits
        return code_bits + 1 + max(child_bits, leaf_bits)

    def total_bits(self) -> int:
        """Total on-chip storage of the table in bits."""
        return self.entry_bits() * len(self)

    def total_megabits(self) -> float:
        return self.total_bits() / 1e6
