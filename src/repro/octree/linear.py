"""The Octree-Table: linearised octree for the FPGA-side units.

Section V-B: "the generated Octree will be configured into an equivalent
Octree-Table, to be transferred to and used by the Down-sampling Unit in the
FPGA.  In the Octree, the leaf nodes contain the address (or address range)
of the contained point(s)."

:class:`OctreeTable` is that flat structure: one entry per node, children
referenced by table index, and leaves carrying the host-memory address range
of their (SFC-reorganised) points.  It also knows its own on-chip footprint
in bits, which is what the Figure 13 on-chip-memory analysis measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.octree.builder import Octree
from repro.octree.node import OctreeNode


@dataclass(frozen=True)
class OctreeTableEntry:
    """One row of the Octree-Table.

    Attributes
    ----------
    index:
        Row index in the table.
    code:
        The node's m-code.
    level:
        Node depth (root = 0).
    is_leaf:
        Whether the row describes a leaf voxel.
    child_indices:
        Mapping ``octant -> row index`` for internal nodes.
    address_range:
        ``(start, end)`` half-open range of host-memory point slots for leaf
        rows (in units of points, relative to the reorganised region base).
    """

    index: int
    code: int
    level: int
    is_leaf: bool
    child_indices: Dict[int, int] = field(default_factory=dict)
    address_range: Tuple[int, int] = (0, 0)

    @property
    def num_points(self) -> int:
        return self.address_range[1] - self.address_range[0]


@dataclass
class OctreeTable:
    """Flattened octree used by the FPGA units."""

    entries: List[OctreeTableEntry]
    depth: int
    root_index: int = 0
    _code_to_leaf_index: Dict[int, int] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    @classmethod
    def from_octree(cls, octree: Octree) -> "OctreeTable":
        """Flatten a pointer-based octree into table form.

        Leaf address ranges follow the SFC leaf order so the table is
        consistent with the host-memory reorganisation produced by
        :class:`~repro.octree.memory_layout.HostMemoryLayout`.
        """
        entries: List[OctreeTableEntry] = []
        code_to_leaf_index: Dict[int, int] = {}

        # First pass: assign leaf address ranges in SFC order.
        leaf_ranges: Dict[int, Tuple[int, int]] = {}
        cursor = 0
        for leaf in octree.leaves_in_sfc_order():
            start = cursor
            cursor += leaf.num_points
            leaf_ranges[leaf.code] = (start, cursor)

        # Second pass: pre-order traversal emitting rows; children are fixed
        # up after their rows exist.
        index_of_node: Dict[int, int] = {}

        def emit(node: OctreeNode) -> int:
            row = len(entries)
            index_of_node[id(node)] = row
            entries.append(
                OctreeTableEntry(
                    index=row,
                    code=node.code,
                    level=node.level,
                    is_leaf=node.is_leaf,
                    child_indices={},
                    address_range=leaf_ranges.get(node.code, (0, 0))
                    if node.is_leaf
                    else (0, 0),
                )
            )
            if node.is_leaf:
                code_to_leaf_index[node.code] = row
            child_rows: Dict[int, int] = {}
            for octant in node.occupied_octants():
                child_rows[octant] = emit(node.children[octant])
            if child_rows:
                entries[row] = OctreeTableEntry(
                    index=row,
                    code=node.code,
                    level=node.level,
                    is_leaf=False,
                    child_indices=child_rows,
                    address_range=(0, 0),
                )
            return row

        root_index = emit(octree.root)
        return cls(
            entries=entries,
            depth=octree.depth,
            root_index=root_index,
            _code_to_leaf_index=code_to_leaf_index,
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    @property
    def num_leaves(self) -> int:
        return len(self._code_to_leaf_index)

    def root(self) -> OctreeTableEntry:
        return self.entries[self.root_index]

    def entry(self, index: int) -> OctreeTableEntry:
        return self.entries[index]

    def leaf_entry_for_code(self, code: int) -> Optional[OctreeTableEntry]:
        row = self._code_to_leaf_index.get(int(code))
        return None if row is None else self.entries[row]

    def children_of(self, entry: OctreeTableEntry) -> List[OctreeTableEntry]:
        """Child rows of an internal entry, in SFC (octant) order."""
        return [
            self.entries[row]
            for _, row in sorted(entry.child_indices.items())
        ]

    def leaf_entries(self) -> List[OctreeTableEntry]:
        """All leaf rows sorted by m-code (SFC order)."""
        return [
            self.entries[row]
            for _, row in sorted(self._code_to_leaf_index.items())
        ]

    # ------------------------------------------------------------------
    # On-chip footprint (Figure 13)
    # ------------------------------------------------------------------
    def entry_bits(self) -> int:
        """Bits needed for one table row in the FPGA implementation.

        A row stores: the m-code (3 bits per level), a leaf flag, eight child
        row indices (internal rows) or a start address + count (leaf rows).
        Row indices and addresses are sized for the actual table/point count,
        rounded up to whole bits.
        """
        code_bits = 3 * self.depth
        index_bits = max(1, int(np.ceil(np.log2(max(2, len(self.entries))))))
        total_points = sum(e.num_points for e in self.leaf_entries())
        address_bits = max(1, int(np.ceil(np.log2(max(2, total_points + 1)))))
        child_bits = 8 * index_bits
        leaf_bits = 2 * address_bits
        return code_bits + 1 + max(child_bits, leaf_bits)

    def total_bits(self) -> int:
        """Total on-chip storage of the table in bits."""
        return self.entry_bits() * len(self.entries)

    def total_megabits(self) -> float:
        return self.total_bits() / 1e6
