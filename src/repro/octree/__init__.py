"""Octree spatial index.

This subpackage implements the spatial-indexing substrate both HgPCN methods
are built on (Sections IV-VI of the paper):

* :class:`~repro.octree.node.OctreeNode` / :class:`~repro.octree.builder.Octree`
  -- a pointer-based octree built in a single pass over the raw point cloud,
  exactly as the Octree-build Unit on the CPU does.
* :class:`~repro.octree.linear.OctreeTable` -- the flattened "Octree-Table"
  representation that is transferred to the FPGA over MMIO and used by the
  Down-sampling Unit and the Data Structuring Unit.
* :mod:`~repro.octree.neighbors` -- same-level voxel neighbor search
  (Frisken & Perry style) used by the VEG voxel expansion.
* :class:`~repro.octree.memory_layout.HostMemoryLayout` -- the Octree-based
  reorganisation of the point data in host memory, mapping SFC order to
  consecutive addresses.
"""

from repro.octree.builder import Octree, OctreeBuildStats
from repro.octree.linear import OctreeTable, OctreeTableEntry
from repro.octree.memory_layout import HostMemoryLayout
from repro.octree.neighbors import (
    codes_within_radius_batch,
    neighbor_codes,
    neighbor_codes_at_radius,
    neighbor_codes_batch,
)
from repro.octree.node import OctreeNode

__all__ = [
    "HostMemoryLayout",
    "Octree",
    "OctreeBuildStats",
    "OctreeNode",
    "OctreeTable",
    "OctreeTableEntry",
    "codes_within_radius_batch",
    "neighbor_codes",
    "neighbor_codes_at_radius",
    "neighbor_codes_batch",
]
