"""Single-pass octree construction (the Octree-build Unit's algorithm).

Section V-A of the paper: the Octree is built "by traversing points in the
raw point cloud in a single pass of the data", subdividing every non-empty
voxel until a pre-defined depth is reached.  At the same time the point data
is reorganised in host memory into the SFC leaf order (handled by
:class:`~repro.octree.memory_layout.HostMemoryLayout`, which consumes the
tree built here).

The builder is functional *and* counted: it reports
:class:`OctreeBuildStats` (points visited, memory traffic, nodes created)
which feed the latency model of the CPU-side Octree-build Unit and the
octree-build-overhead analysis of Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.geometry.bbox import AxisAlignedBox
from repro.geometry.morton import morton_encode_points, voxel_center
from repro.geometry.pointcloud import PointCloud
from repro.kernels import bucketize_codes, unique_sorted
from repro.octree.node import OctreeNode


@dataclass
class OctreeBuildStats:
    """Operation counts of one octree construction.

    These counts drive the CPU-side cost model: building the tree requires
    exactly one streaming read of the raw cloud plus one write per point for
    the reorganised copy, plus bookkeeping writes for the created nodes.
    """

    num_points: int = 0
    depth: int = 0
    num_nodes: int = 0
    num_leaves: int = 0
    host_memory_reads: int = 0
    host_memory_writes: int = 0
    max_leaf_occupancy: int = 0

    def total_memory_accesses(self) -> int:
        return self.host_memory_reads + self.host_memory_writes


@dataclass
class Octree:
    """A built octree over a point cloud frame."""

    depth: int
    box: AxisAlignedBox
    cloud: PointCloud
    leaf_codes: np.ndarray = field(repr=False)
    point_codes: np.ndarray = field(repr=False)
    stats: OctreeBuildStats = field(default_factory=OctreeBuildStats)
    #: Pointer tree, materialised lazily on first access: the flat arrays
    #: above fully describe the octree, and the vectorized consumers (OIS,
    #: the host-memory layout) never touch individual nodes, so ``build``
    #: does not pay for creating them.
    _root: Optional[OctreeNode] = field(default=None, repr=False)
    _leaf_lookup: Optional[Dict[int, OctreeNode]] = field(default=None, repr=False)
    #: Cached SFC point permutation (computed lazily when not supplied).
    _sfc_order: Optional[np.ndarray] = field(default=None, repr=False)
    #: Leaf bucket geometry over ``_sfc_order`` (for lazy materialisation).
    _bucket_starts: Optional[np.ndarray] = field(default=None, repr=False)
    _bucket_counts: Optional[np.ndarray] = field(default=None, repr=False)
    #: Cached cumulative leaf point counts (``num_leaves + 1`` slot bounds).
    _slot_bounds: Optional[np.ndarray] = field(default=None, repr=False)
    #: Cached sorted node codes per level (the canonical flat representation).
    _level_codes: Optional[List[np.ndarray]] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        cloud: PointCloud,
        depth: int,
        box: Optional[AxisAlignedBox] = None,
        padding: float = 1e-9,
    ) -> "Octree":
        """Build an octree of ``depth`` levels below the root over ``cloud``.

        The construction is vectorised (a single m-code computation over the
        whole cloud followed by a sort), which mirrors the single-pass nature
        of the hardware algorithm while staying fast in Python.
        """
        if cloud.num_points == 0:
            raise ValueError("cannot build an octree over an empty cloud")
        if box is None:
            box = cloud.bounds().as_cube(padding=padding)

        codes = morton_encode_points(cloud.points, box, depth)
        order, unique_codes, starts, counts = bucketize_codes(codes)
        return cls._assemble(
            cloud, depth, box, codes, order, unique_codes, starts, counts
        )

    @classmethod
    def build_batch(
        cls,
        clouds: "Sequence[PointCloud]",
        depth: int,
        padding: float = 1e-9,
    ) -> List["Octree"]:
        """Build one octree per frame of a same-shaped batch.

        The heavy kernel work is issued once for the whole stack -- one
        bit-spreading m-code encode over the ``(B * N, 3)`` voxel indices
        and one stable ``argsort`` over the ``(B, N)`` code matrix -- while
        the per-frame assembly (unique leaf codes, node counting, stats)
        stays frame-local.  Every returned octree is bit-identical (codes,
        permutation, stats, box) to ``Octree.build`` on that frame alone.
        """
        from repro.kernels import encode_cells, stack_frames

        clouds = list(clouds)
        if not clouds:
            return []
        for cloud in clouds:
            if cloud.num_points == 0:
                raise ValueError("cannot build an octree over an empty cloud")

        points = stack_frames([cloud.points for cloud in clouds])  # (B, N, 3)
        minima = points.min(axis=1)
        maxima = points.max(axis=1)
        boxes: List[AxisAlignedBox] = []
        for b, cloud in enumerate(clouds):
            bounds = AxisAlignedBox(minimum=minima[b], maximum=maxima[b])
            if cloud._bounds_cache is None:
                cloud._bounds_cache = bounds
            boxes.append(bounds.as_cube(padding=padding))

        # Per-frame voxel indices, same elementwise recipe as
        # ``geometry.morton.voxel_indices`` but broadcast over the stack.
        resolution = 1 << depth
        cube_min = np.stack([box.minimum for box in boxes])
        cube_size = np.stack([box.size for box in boxes])
        extent = np.where(cube_size > 0, cube_size, 1.0)
        relative = (points - cube_min[:, None, :]) / extent[:, None, :]
        indices = np.floor(relative * resolution).astype(np.int64)
        np.clip(indices, 0, resolution - 1, out=indices)

        codes = encode_cells(indices.reshape(-1, 3), depth).reshape(
            len(clouds), -1
        )
        orders = np.argsort(codes, axis=1, kind="stable")

        octrees: List["Octree"] = []
        for b, cloud in enumerate(clouds):
            frame_codes = codes[b]
            order = orders[b]
            sorted_codes = frame_codes[order]
            unique_codes, starts = np.unique(sorted_codes, return_index=True)
            counts = np.diff(np.append(starts, sorted_codes.shape[0]))
            octrees.append(
                cls._assemble(
                    cloud,
                    depth,
                    boxes[b],
                    frame_codes,
                    order,
                    unique_codes.astype(np.int64),
                    starts.astype(np.intp),
                    counts.astype(np.intp),
                )
            )
        return octrees

    @classmethod
    def _assemble(
        cls,
        cloud: PointCloud,
        depth: int,
        box: AxisAlignedBox,
        codes: np.ndarray,
        order: np.ndarray,
        unique_codes: np.ndarray,
        starts: np.ndarray,
        counts: np.ndarray,
    ) -> "Octree":
        """Assemble an octree from pre-bucketed m-codes (shared build tail)."""
        stats = OctreeBuildStats(num_points=cloud.num_points, depth=depth)
        # One streaming read of every raw point (coordinates) ...
        stats.host_memory_reads += cloud.num_points
        # ... and one write per point for the SFC-reorganised copy.
        stats.host_memory_writes += cloud.num_points
        stats.max_leaf_occupancy = int(counts.max()) if counts.size else 0

        # Count interior nodes level by level without creating any node
        # object: the sorted unique prefixes at level L are one shift away
        # from level L+1.
        num_nodes = 1 + int(unique_codes.shape[0])  # root + leaves
        prefixes = unique_codes
        for _ in range(depth - 1, 0, -1):
            # Right-shifting a sorted array keeps it sorted, so the level
            # above needs no re-sorting unique.
            prefixes = unique_sorted(prefixes >> 3)
            num_nodes += int(prefixes.shape[0])

        stats.num_nodes = num_nodes
        stats.num_leaves = int(unique_codes.shape[0])
        # Node bookkeeping: one write per created node (child pointer / table
        # entry).  This is small relative to the per-point traffic but is
        # included for completeness.
        stats.host_memory_writes += stats.num_nodes

        return cls(
            depth=depth,
            box=box,
            cloud=cloud,
            leaf_codes=unique_codes,
            point_codes=codes,
            stats=stats,
            _sfc_order=order,
            _bucket_starts=starts,
            _bucket_counts=counts,
        )

    # ------------------------------------------------------------------
    # Lazy pointer-tree materialisation
    # ------------------------------------------------------------------
    def _materialise_tree(self) -> None:
        """Create the pointer tree from the flat code arrays.

        Nodes are created level by level in ascending-code order, each
        linked to its parent with one dict lookup; per-level voxel boxes are
        computed in one vectorised pass instead of recursive
        ``box.octant`` subdivision.
        """
        from repro.kernels import decode_cells

        depth = self.depth
        root = OctreeNode(code=0, level=0, box=self.box)

        level_codes = self.codes_per_level()

        box_minimum = self.box.minimum
        box_size = self.box.size
        previous: Dict[int, OctreeNode] = {0: root}
        for level in range(1, depth + 1):
            codes = level_codes[level]
            cell = box_size / (1 << level)
            minima = box_minimum + decode_cells(codes, level) * cell
            maxima = minima + cell
            current: Dict[int, OctreeNode] = {}
            for position, code in enumerate(codes.tolist()):
                node = OctreeNode(
                    code=code,
                    level=level,
                    box=AxisAlignedBox.unchecked(
                        minima[position], maxima[position]
                    ),
                )
                previous[code >> 3].children[code & 0b111] = node
                current[code] = node
            previous = current

        order = self._sfc_order_cached()
        self._ensure_buckets()
        for position, code in enumerate(self.leaf_codes.tolist()):
            start = self._bucket_starts[position]
            previous[code].point_indices = order[
                start : start + self._bucket_counts[position]
            ]

        self._root = root
        self._leaf_lookup = previous

    @property
    def root(self) -> OctreeNode:
        if self._root is None:
            self._materialise_tree()
        return self._root

    @property
    def leaf_lookup(self) -> Dict[int, OctreeNode]:
        if self._leaf_lookup is None:
            self._materialise_tree()
        return self._leaf_lookup

    # ------------------------------------------------------------------
    # Flat representation
    # ------------------------------------------------------------------
    def codes_per_level(self) -> List[np.ndarray]:
        """Sorted node m-codes for levels 0..depth.

        ``codes_per_level()[L]`` holds the ascending codes of the occupied
        voxels at level ``L`` (level 0 is the root, level ``depth`` the
        leaves).  Together with :meth:`leaf_point_counts` this is the
        canonical flat octree representation; every consumer that only needs
        codes, occupancy, or address ranges reads these arrays and never
        materialises an :class:`OctreeNode`.
        """
        if self._level_codes is None:
            levels: List[np.ndarray] = [self.leaf_codes] * (self.depth + 1)
            for level in range(self.depth - 1, -1, -1):
                # Each level's codes are sorted, and a right shift preserves
                # that, so deduplication needs no re-sorting unique.
                levels[level] = unique_sorted(levels[level + 1] >> 3)
            self._level_codes = levels
        return self._level_codes

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_leaves(self) -> int:
        return int(self.leaf_codes.shape[0])

    @property
    def num_nodes(self) -> int:
        return self.stats.num_nodes

    def leaf(self, code: int) -> Optional[OctreeNode]:
        """Leaf node with m-code ``code`` or ``None`` when that voxel is empty."""
        return self.leaf_lookup.get(int(code))

    def leaf_of_point(self, point_index: int) -> OctreeNode:
        """The leaf voxel containing point ``point_index``."""
        return self.leaf_lookup[int(self.point_codes[point_index])]

    def leaves_in_sfc_order(self) -> List[OctreeNode]:
        """All leaves ordered by m-code (the 1-D array order of Figure 5b)."""
        lookup = self.leaf_lookup
        return [lookup[int(code)] for code in self.leaf_codes]

    def _sfc_order_cached(self) -> np.ndarray:
        if self._sfc_order is None:
            self._sfc_order = np.argsort(self.point_codes, kind="stable")
        return self._sfc_order

    def _ensure_buckets(self) -> None:
        """Compute the flat leaf buckets (starts/counts over the SFC order).

        Pure array work over the sorted point codes -- never materialises the
        pointer tree.
        """
        if self._bucket_starts is not None and self._bucket_counts is not None:
            return
        sorted_codes = self.point_codes[self._sfc_order_cached()]
        self._bucket_starts = np.searchsorted(
            sorted_codes, self.leaf_codes, side="left"
        ).astype(np.intp)
        self._bucket_counts = (
            np.searchsorted(sorted_codes, self.leaf_codes, side="right")
            - self._bucket_starts
        ).astype(np.intp)

    def leaf_point_counts(self) -> np.ndarray:
        """Points per leaf, aligned with ``leaf_codes`` (read-only view).

        Flat-path accessor: computed from the sorted point codes, without
        materialising the pointer tree.
        """
        self._ensure_buckets()
        view = self._bucket_counts.view()
        view.flags.writeable = False
        return view

    def leaf_slot_bounds(self) -> np.ndarray:
        """Cumulative leaf point counts as ``num_leaves + 1`` slot bounds.

        ``bounds[i] : bounds[i + 1]`` is the half-open range of SFC slots
        (host-memory point slots relative to the reorganised region base)
        holding the points of leaf ``leaf_codes[i]``.  This is the
        searchsorted side of the Octree-Table address ranges and of
        :meth:`HostMemoryLayout.leaf_slot_range`.
        """
        if self._slot_bounds is None:
            bounds = np.zeros(self.num_leaves + 1, dtype=np.intp)
            np.cumsum(self.leaf_point_counts(), out=bounds[1:])
            bounds.setflags(write=False)
            self._slot_bounds = bounds
        return self._slot_bounds

    def leaf_position(self, code: int) -> int:
        """Index of leaf ``code`` in the flat leaf arrays, or -1 when empty."""
        position = int(np.searchsorted(self.leaf_codes, code))
        if (
            position < self.num_leaves
            and int(self.leaf_codes[position]) == int(code)
        ):
            return position
        return -1

    def points_in_sfc_order(self) -> np.ndarray:
        """Point indices concatenated in leaf-SFC order (read-only view).

        Equal to the per-leaf concatenation (each leaf stores a stable
        ascending-code sort slice), computed as one stable argsort instead
        of an O(leaves) concatenate.  The view is read-only because the
        underlying permutation is shared with the lazy tree and the
        host-memory layout.
        """
        if not self.num_leaves:
            return np.zeros(0, dtype=np.intp)
        view = self._sfc_order_cached().view()
        view.flags.writeable = False
        return view

    def leaf_center(self, code: int) -> np.ndarray:
        """Geometric centre of the leaf voxel ``code``."""
        return voxel_center(int(code), self.depth, self.box)

    def _leaf_occupancies(self) -> np.ndarray:
        """Points per leaf, aligned with ``leaf_codes``."""
        return self.leaf_point_counts()

    def occupancy_histogram(self) -> Dict[int, int]:
        return {
            int(code): int(count)
            for code, count in zip(self.leaf_codes, self._leaf_occupancies())
        }

    def non_uniformity(self) -> float:
        """Coefficient of variation of leaf occupancy.

        The paper observes (Fig. 11 discussion) that a more non-uniform
        spatial distribution yields a deeper / more unbalanced octree; this
        scalar quantifies that property for the datasets we synthesise.
        """
        counts = self._leaf_occupancies().astype(float)
        if counts.size == 0:
            return 0.0
        mean = counts.mean()
        if mean == 0:
            return 0.0
        return float(counts.std() / mean)
