"""Single-pass octree construction (the Octree-build Unit's algorithm).

Section V-A of the paper: the Octree is built "by traversing points in the
raw point cloud in a single pass of the data", subdividing every non-empty
voxel until a pre-defined depth is reached.  At the same time the point data
is reorganised in host memory into the SFC leaf order (handled by
:class:`~repro.octree.memory_layout.HostMemoryLayout`, which consumes the
tree built here).

The builder is functional *and* counted: it reports
:class:`OctreeBuildStats` (points visited, memory traffic, nodes created)
which feed the latency model of the CPU-side Octree-build Unit and the
octree-build-overhead analysis of Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.geometry.bbox import AxisAlignedBox
from repro.geometry.morton import (
    morton_encode_points,
    prefix_at_level,
    voxel_center,
)
from repro.geometry.pointcloud import PointCloud
from repro.octree.node import OctreeNode


@dataclass
class OctreeBuildStats:
    """Operation counts of one octree construction.

    These counts drive the CPU-side cost model: building the tree requires
    exactly one streaming read of the raw cloud plus one write per point for
    the reorganised copy, plus bookkeeping writes for the created nodes.
    """

    num_points: int = 0
    depth: int = 0
    num_nodes: int = 0
    num_leaves: int = 0
    host_memory_reads: int = 0
    host_memory_writes: int = 0
    max_leaf_occupancy: int = 0

    def total_memory_accesses(self) -> int:
        return self.host_memory_reads + self.host_memory_writes


@dataclass
class Octree:
    """A built octree over a point cloud frame."""

    root: OctreeNode
    depth: int
    box: AxisAlignedBox
    cloud: PointCloud
    leaf_codes: np.ndarray = field(repr=False)
    point_codes: np.ndarray = field(repr=False)
    stats: OctreeBuildStats = field(default_factory=OctreeBuildStats)
    _leaf_lookup: Dict[int, OctreeNode] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        cloud: PointCloud,
        depth: int,
        box: Optional[AxisAlignedBox] = None,
        padding: float = 1e-9,
    ) -> "Octree":
        """Build an octree of ``depth`` levels below the root over ``cloud``.

        The construction is vectorised (a single m-code computation over the
        whole cloud followed by a sort), which mirrors the single-pass nature
        of the hardware algorithm while staying fast in Python.
        """
        if cloud.num_points == 0:
            raise ValueError("cannot build an octree over an empty cloud")
        if box is None:
            box = cloud.bounds().as_cube(padding=padding)

        codes = morton_encode_points(cloud.points, box, depth)
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]

        stats = OctreeBuildStats(num_points=cloud.num_points, depth=depth)
        # One streaming read of every raw point (coordinates) ...
        stats.host_memory_reads += cloud.num_points
        # ... and one write per point for the SFC-reorganised copy.
        stats.host_memory_writes += cloud.num_points

        root = OctreeNode(code=0, level=0, box=box)
        leaf_lookup: Dict[int, OctreeNode] = {}

        unique_codes, starts = np.unique(sorted_codes, return_index=True)
        ends = np.append(starts[1:], len(sorted_codes))
        for leaf_code, start, end in zip(unique_codes, starts, ends):
            leaf_code = int(leaf_code)
            indices = order[start:end]
            node = cls._insert_leaf(root, leaf_code, depth, box)
            node.point_indices = indices
            leaf_lookup[leaf_code] = node
            stats.max_leaf_occupancy = max(stats.max_leaf_occupancy, len(indices))

        all_nodes = list(root.iter_nodes())
        stats.num_nodes = len(all_nodes)
        stats.num_leaves = len(leaf_lookup)
        # Node bookkeeping: one write per created node (child pointer / table
        # entry).  This is small relative to the per-point traffic but is
        # included for completeness.
        stats.host_memory_writes += stats.num_nodes

        return cls(
            root=root,
            depth=depth,
            box=box,
            cloud=cloud,
            leaf_codes=unique_codes.astype(np.int64),
            point_codes=codes,
            stats=stats,
            _leaf_lookup=leaf_lookup,
        )

    @staticmethod
    def _insert_leaf(
        root: OctreeNode, leaf_code: int, depth: int, box: AxisAlignedBox
    ) -> OctreeNode:
        """Walk/extend the path from the root to the leaf voxel ``leaf_code``."""
        node = root
        for level in range(1, depth + 1):
            prefix = prefix_at_level(leaf_code, depth, level)
            octant = prefix & 0b111
            child = node.child(octant)
            if child is None:
                child = OctreeNode(
                    code=prefix,
                    level=level,
                    box=node.box.octant(octant),
                )
                node.children[octant] = child
            node = child
        return node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_leaves(self) -> int:
        return len(self._leaf_lookup)

    @property
    def num_nodes(self) -> int:
        return self.stats.num_nodes

    def leaf(self, code: int) -> Optional[OctreeNode]:
        """Leaf node with m-code ``code`` or ``None`` when that voxel is empty."""
        return self._leaf_lookup.get(int(code))

    def leaf_of_point(self, point_index: int) -> OctreeNode:
        """The leaf voxel containing point ``point_index``."""
        return self._leaf_lookup[int(self.point_codes[point_index])]

    def leaves_in_sfc_order(self) -> List[OctreeNode]:
        """All leaves ordered by m-code (the 1-D array order of Figure 5b)."""
        return [self._leaf_lookup[int(code)] for code in self.leaf_codes]

    def points_in_sfc_order(self) -> np.ndarray:
        """Point indices concatenated in leaf-SFC order."""
        if not self.num_leaves:
            return np.zeros(0, dtype=np.intp)
        return np.concatenate(
            [leaf.point_indices for leaf in self.leaves_in_sfc_order()]
        )

    def leaf_center(self, code: int) -> np.ndarray:
        """Geometric centre of the leaf voxel ``code``."""
        return voxel_center(int(code), self.depth, self.box)

    def occupancy_histogram(self) -> Dict[int, int]:
        return {
            int(code): self._leaf_lookup[int(code)].num_points
            for code in self.leaf_codes
        }

    def non_uniformity(self) -> float:
        """Coefficient of variation of leaf occupancy.

        The paper observes (Fig. 11 discussion) that a more non-uniform
        spatial distribution yields a deeper / more unbalanced octree; this
        scalar quantifies that property for the datasets we synthesise.
        """
        counts = np.array(
            [leaf.num_points for leaf in self._leaf_lookup.values()], dtype=float
        )
        if counts.size == 0:
            return 0.0
        mean = counts.mean()
        if mean == 0:
            return 0.0
        return float(counts.std() / mean)
