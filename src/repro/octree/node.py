"""Pointer-based octree node.

Each node corresponds to one voxel of Figure 5: internal nodes carry up to
eight children indexed by their 3-bit octant code; leaf nodes carry the
indices (into the original cloud) of the points that fall inside the voxel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.geometry.bbox import AxisAlignedBox


@dataclass
class OctreeNode:
    """One voxel of the octree.

    Attributes
    ----------
    code:
        The node's m-code.  The root has code 0 at level 0; a child's code is
        ``parent.code * 8 + octant``.
    level:
        Depth of the node; the root is level 0, leaves are at the tree depth.
    box:
        The axis-aligned cube this voxel covers.
    children:
        Mapping ``octant -> OctreeNode`` for the non-empty children.  Empty
        for leaf nodes.
    point_indices:
        Indices of the points stored in this node.  Only leaves store points.
    """

    code: int
    level: int
    box: AxisAlignedBox
    children: Dict[int, "OctreeNode"] = field(default_factory=dict)
    point_indices: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.intp)
    )

    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def num_points(self) -> int:
        """Points stored directly in this node (leaves only)."""
        return int(self.point_indices.shape[0])

    def subtree_point_count(self) -> int:
        """Total points stored in this node's subtree."""
        if self.is_leaf:
            return self.num_points
        return sum(child.subtree_point_count() for child in self.children.values())

    def child(self, octant: int) -> Optional["OctreeNode"]:
        return self.children.get(octant)

    def occupied_octants(self) -> List[int]:
        """Octant codes of the non-empty children, in SFC order."""
        return sorted(self.children.keys())

    # ------------------------------------------------------------------
    def iter_leaves(self) -> Iterator["OctreeNode"]:
        """Depth-first, SFC-ordered traversal of the leaf nodes."""
        if self.is_leaf:
            yield self
            return
        for octant in self.occupied_octants():
            yield from self.children[octant].iter_leaves()

    def iter_nodes(self) -> Iterator["OctreeNode"]:
        """Depth-first, SFC-ordered traversal of all nodes (pre-order)."""
        yield self
        for octant in self.occupied_octants():
            yield from self.children[octant].iter_nodes()

    def bits(self) -> str:
        """Binary m-code string, e.g. ``'110101'`` for a level-2 quad node."""
        if self.level == 0:
            return ""
        return format(self.code, f"0{3 * self.level}b")
