"""Octree-based host-memory reorganisation.

Section V-A: after building the octree, the point cloud in host memory is
"pre-configured" -- a reorganised copy is created in which the points appear
in the 1-D SFC leaf order, so a leaf's points occupy consecutive addresses
and the Octree-Table can refer to them by an address range.

:class:`HostMemoryLayout` models that reorganised region: it maps point slot
numbers (the 1-D order) to byte addresses, maps original point indices to
their slot, and can read points back out while charging the accesses to a
:class:`~repro.hardware.memory.HostMemory` model when one is attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.geometry.pointcloud import PointCloud
from repro.octree.builder import Octree


@dataclass
class HostMemoryLayout:
    """The SFC-reorganised copy of a point cloud frame in host memory.

    Attributes
    ----------
    octree:
        The octree whose leaf order defines the layout.
    base_address:
        Byte address of the first reorganised point in host memory.
    bytes_per_point:
        Stored size of one point record (XYZ + features), default single
        precision.
    slot_to_original:
        ``slot_to_original[s]`` is the original cloud index of the point in
        slot ``s``.
    original_to_slot:
        Inverse permutation.
    """

    octree: Octree
    base_address: int = 0
    bytes_per_point: int = 12
    slot_to_original: np.ndarray = field(default=None, repr=False)
    original_to_slot: np.ndarray = field(default=None, repr=False)
    reordered_points: np.ndarray = field(default=None, repr=False)
    reordered_features: Optional[np.ndarray] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @classmethod
    def from_octree(
        cls,
        octree: Octree,
        base_address: int = 0,
        bytes_per_scalar: int = 4,
    ) -> "HostMemoryLayout":
        cloud = octree.cloud
        slot_to_original = octree.points_in_sfc_order()
        original_to_slot = np.empty_like(slot_to_original)
        original_to_slot[slot_to_original] = np.arange(
            slot_to_original.shape[0], dtype=slot_to_original.dtype
        )
        scalars_per_point = 3 + cloud.num_feature_channels
        layout = cls(
            octree=octree,
            base_address=base_address,
            bytes_per_point=scalars_per_point * bytes_per_scalar,
            slot_to_original=slot_to_original,
            original_to_slot=original_to_slot,
            reordered_points=cloud.points[slot_to_original],
            reordered_features=(
                None
                if cloud.features is None
                else cloud.features[slot_to_original]
            ),
        )
        return layout

    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        return int(self.slot_to_original.shape[0])

    def address_of_slot(self, slot: int) -> int:
        """Byte address of the point stored in ``slot``."""
        if not 0 <= slot < self.num_points:
            raise IndexError(f"slot {slot} out of range [0, {self.num_points})")
        return self.base_address + slot * self.bytes_per_point

    def slot_of_original(self, original_index: int) -> int:
        """Slot number of an original-cloud point index."""
        return int(self.original_to_slot[original_index])

    def address_of_original(self, original_index: int) -> int:
        return self.address_of_slot(self.slot_of_original(original_index))

    def leaf_slot_range(self, leaf_code: int) -> tuple[int, int]:
        """Half-open slot range holding the points of leaf ``leaf_code``.

        The octree's leaves were laid out consecutively in SFC order, so a
        leaf's slots are contiguous; this is the address-range property the
        Octree-Table relies on.  One binary search over the flat leaf codes
        plus the cached cumulative point counts -- the scan it replaces is
        retained as :func:`repro.kernels.reference.leaf_slot_range_scan`.
        """
        position = self.octree.leaf_position(leaf_code)
        if position < 0:
            raise KeyError(f"no occupied leaf with code {leaf_code}")
        bounds = self.octree.leaf_slot_bounds()
        return int(bounds[position]), int(bounds[position + 1])

    # ------------------------------------------------------------------
    def read_slots(self, slots: Sequence[int] | np.ndarray) -> np.ndarray:
        """Read the XYZ coordinates stored at ``slots`` (reorganised order)."""
        slots = np.asarray(slots, dtype=np.intp)
        return self.reordered_points[slots]

    def read_original(self, indices: Sequence[int] | np.ndarray) -> np.ndarray:
        """Read XYZ by original index, going through the slot mapping."""
        indices = np.asarray(indices, dtype=np.intp)
        return self.read_slots(self.original_to_slot[indices])

    def as_point_cloud(self) -> PointCloud:
        """The reorganised copy as a new :class:`PointCloud`."""
        return PointCloud(
            points=self.reordered_points.copy(),
            features=(
                None
                if self.reordered_features is None
                else self.reordered_features.copy()
            ),
            frame_id=self.octree.cloud.frame_id,
            timestamp=self.octree.cloud.timestamp,
        )

    def total_bytes(self) -> int:
        """Host-memory footprint of the reorganised copy."""
        return self.num_points * self.bytes_per_point
