"""Octree-Indexed Sampling (OIS) -- the paper's Algorithm 2.

OIS replaces the point-wise distance scans of FPS with spatial-index
operations:

1. **Octree-build Unit (CPU):** build an octree over the raw frame in a
   single pass and reorganise the points in host memory into SFC leaf order
   (:class:`~repro.octree.memory_layout.HostMemoryLayout`).
2. **Down-sampling Unit (FPGA):** to pick the next sample, descend the
   Octree-Table from the root, at every level choosing the child voxel whose
   m-code is farthest (by Hamming distance) from the current seed voxel;
   within the reached leaf the point is chosen by SFC order.  Only the
   finally selected point is read from host memory, so the per-iteration
   memory traffic drops from O(N) to O(depth).

The functional implementation below produces a real sample set and real
operation counts; the paper-scale analytic model is exposed separately as
:func:`ois_counter_model` so benchmarks can report counts for million-point
frames without materialising them.

The sampling loop is *wavefront* based: the summary point only moves by
``O(1/len(picked))`` per pick, so its m-code is constant across long runs
of consecutive picks.  Whenever the code has been stable, the sampler
speculates a whole wavefront of W picks under the frozen code -- one
level-synchronous multi-descent whose per-level ranking is the closed-form
greedy winner sequence of :func:`repro.kernels.wavefront_level_winners` --
then validates the run against the true running-mean codes and commits the
accepted prefix.  Picks, per-pick counters, and SFC tie-breaks are bit
identical to the retained one-sample-at-a-time reference
(:func:`repro.kernels.reference.ois_sample_scalar`) for every wavefront
width, including the degenerate ``wavefront=1``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.metrics import OpCounters
from repro.geometry.pointcloud import PointCloud
from repro.kernels import (
    encode_point_scalar,
    hamming_codes,
    wavefront_level_winners,
    wavefront_singleton_winners,
)
from repro.geometry.voxelgrid import suggest_depth
from repro.octree.builder import Octree
from repro.octree.memory_layout import HostMemoryLayout
from repro.sampling.base import Sampler, SamplingResult

#: Default cap on the speculative wavefront width.  Wide wavefronts only
#: form after the summary code has proven stable (the width grows per
#: fully-accepted wavefront and collapses on truncation), so the cap
#: mostly bounds the worst-case wasted simulation of one truncation.
DEFAULT_WAVEFRONT = 1024

#: Width of the first wavefront of a stable run and the growth factor per
#: fully-accepted wavefront.  A wavefront has a fixed per-level array cost
#: regardless of width, so ramping quickly matters more than the wasted
#: lanes of the final (truncated) wavefront of a run.
_INITIAL_WIDTH = 16
_GROWTH = 4

#: Consecutive unchanged summary codes required before leaving the
#: one-sample-at-a-time path.  Early in the loop the mean moves across
#: voxel boundaries almost every pick and speculation is pure overhead;
#: two stable codes in a row is the cheapest evidence of a run.
_STABLE_RUN_THRESHOLD = 2


def ois_counter_model(
    num_points: int,
    num_samples: int,
    octree_depth: int,
    num_sampling_modules: int = 8,
    include_build: bool = True,
    count_seed_descent: bool = True,
) -> OpCounters:
    """Analytic operation counts of Algorithm 2.

    * Octree build: one streaming read of the raw frame plus one write per
      point for the reorganised copy (when ``include_build``).
    * Per sample: one Octree-Table walk of ``octree_depth`` levels.  At each
      level the Sampling Modules evaluate up to eight child voxels
      (Hamming distances) in parallel; all of that traffic stays on chip.
    * Per sample: exactly one host-memory read (the picked point) and one
      on-chip write into the Sampled-Point-Table.

    ``count_seed_descent=True`` models the paper's accounting, where every
    sample is charged one table walk.  The functional sampler draws its
    seed sample directly (no descent), so its measured counters correspond
    to ``count_seed_descent=False``: ``num_samples - 1`` walks, while the
    per-sample host read / SPT write is still charged for all samples.  On
    a frame whose octree keeps all eight children of every visited node
    eligible, the model with ``count_seed_descent=False`` matches the
    functional counters exactly (see ``tests/test_sampling_ois.py``).
    """
    if octree_depth < 1:
        raise ValueError("octree_depth must be >= 1")
    counters = OpCounters()
    if include_build:
        counters.host_memory_reads += num_points
        counters.host_memory_writes += num_points
        # m-code computation + bucket insertion during the single build pass
        # (kept consistent with ``hardware.octree_build_unit``).
        counters.compare_ops += num_points * (octree_depth + 2)
    per_level_children = min(8, max(1, num_sampling_modules))
    walks = num_samples if count_seed_descent else max(0, num_samples - 1)
    counters.node_visits += walks * octree_depth
    counters.hamming_ops += walks * octree_depth * per_level_children
    counters.onchip_reads += walks * octree_depth * per_level_children
    counters.compare_ops += walks * octree_depth * per_level_children
    counters.host_memory_reads += num_samples
    counters.onchip_writes += num_samples
    return counters


class OctreeIndexedSampler(Sampler):
    """Functional OIS implementation with operation accounting.

    Parameters
    ----------
    octree_depth:
        Depth of the octree; ``None`` picks a depth from the frame size.
    num_sampling_modules:
        Voxel-level parallelism of the Down-sampling Unit (Figure 7b).  The
        functional result does not depend on it; the hardware latency model
        does, and the counters record the work as if all children of a node
        are evaluated (which the modules do in parallel).
    approximate:
        Enable the approximate OIS-based FPS of Section VIII-A: once the
        walk reaches the leaf, a random unpicked point of the leaf replaces
        the SFC-extreme point.
    count_build_at_scale:
        When given, build-phase counters are reported for a frame of this
        many points (paper-scale) while the functional pass runs on the
        actual input.
    wavefront:
        Cap on the speculative wavefront width (``None`` =
        :data:`DEFAULT_WAVEFRONT`).  Purely a performance knob: results and
        counters are bit-identical for every value, and ``wavefront=1``
        degenerates to the one-sample-at-a-time walk of
        :func:`repro.kernels.reference.ois_sample_scalar`.
    """

    name = "ois"

    def __init__(
        self,
        octree_depth: Optional[int] = None,
        num_sampling_modules: int = 8,
        approximate: bool = False,
        seed: int = 0,
        count_build_at_scale: Optional[int] = None,
        wavefront: Optional[int] = None,
    ):
        if wavefront is not None and wavefront < 1:
            raise ValueError("wavefront must be >= 1")
        self._octree_depth = octree_depth
        self._num_sampling_modules = num_sampling_modules
        self._approximate = approximate
        self._seed = seed
        self._count_build_at_scale = count_build_at_scale
        self._wavefront = wavefront if wavefront is not None else DEFAULT_WAVEFRONT

    # ------------------------------------------------------------------
    def sample(
        self,
        cloud: PointCloud,
        num_samples: int,
        octree: Optional[Octree] = None,
    ) -> SamplingResult:
        """Down-sample ``cloud``; optionally reuse a pre-built ``octree``.

        Passing a pre-built octree models the amortisation the paper points
        out: the VEG method of the Inference Engine reuses the same octree,
        so its build cost is paid once per frame.
        """
        self._validate(cloud, num_samples)
        rng = np.random.default_rng(self._seed)
        counters = OpCounters()

        depth = self._octree_depth or suggest_depth(cloud.num_points)
        if octree is None:
            octree = Octree.build(cloud, depth=depth)
            build_reads = octree.stats.host_memory_reads
            build_writes = octree.stats.host_memory_writes
            if self._count_build_at_scale is not None:
                scale = self._count_build_at_scale / max(1, cloud.num_points)
                build_reads = int(round(build_reads * scale))
                build_writes = int(round(build_writes * scale))
            counters.host_memory_reads += build_reads
            counters.host_memory_writes += build_writes
        else:
            depth = octree.depth
        layout = HostMemoryLayout.from_octree(octree)

        picked = self._run_sampling_loop(
            octree, layout, num_samples, rng, counters
        )
        return self._result(
            cloud,
            np.asarray(picked, dtype=np.intp),
            counters,
            info={
                "octree_depth": depth,
                "octree_nodes": octree.num_nodes,
                "octree_leaves": octree.num_leaves,
                "octree_build_stats": octree.stats,
                "approximate": self._approximate,
            },
        )

    # ------------------------------------------------------------------
    def _run_sampling_loop(
        self,
        octree: Octree,
        layout: HostMemoryLayout,
        num_samples: int,
        rng: np.random.Generator,
        counters: OpCounters,
    ) -> List[int]:
        """Wavefront Octree-Table walk over flat per-level node arrays.

        Two retained references bound this loop: the dict-walk
        :func:`repro.kernels.reference.ois_scalar` (pre-kernel) and the
        one-sample-at-a-time :func:`repro.kernels.reference.ois_sample_scalar`
        (the immediate predecessor, whose per-pick descent ranks each level
        with one array-wide XOR+popcount).  This implementation keeps the
        same flat table but fuses *runs* of picks: while the summary code
        is unchanged, the serial pick/consume recurrence has a closed form
        per level (:func:`repro.kernels.wavefront_level_winners`), so a
        whole wavefront of W speculative picks descends level-synchronously
        at a fixed number of array ops per level.  The run is then
        validated against the true running-mean codes -- pick ``j`` of the
        wavefront is only legitimate if the code after picks ``0..j-1``
        still equals the frozen one -- and the accepted prefix is
        committed; nothing of a rejected suffix (counters, RNG draws,
        table state) ever materialises.  Selected indices and all counters
        are bit-identical to both references for every wavefront width.
        """
        depth = octree.depth
        cloud = octree.cloud
        point_codes = octree.point_codes
        leaf_codes = octree.leaf_codes

        # Remaining (unpicked) points per leaf, kept in SFC slot order so the
        # "farthest point by SFC traversal" rule is an end-of-list access.
        # slot_to_original is already leaf-major in ascending-code order, so
        # each leaf's remaining list is one contiguous slice of it.
        slot_to_original = layout.slot_to_original
        slot_bounds = octree.leaf_slot_bounds()
        leaf_starts = slot_bounds[:-1]
        leaf_ends = slot_bounds[1:]
        leaf_counts = leaf_ends - leaf_starts

        if self._approximate:
            # Approximate mode draws random in-leaf offsets, so buckets are
            # Python lists supporting arbitrary removal.  They materialise
            # lazily: a run touches at most one leaf per pick, so most of
            # the tens of thousands of leaves of a paper-scale frame never
            # need their slice converted to a list at all.
            slot_list = slot_to_original.tolist()
            bucket_starts = leaf_starts.tolist()
            bucket_ends = leaf_ends.tolist()
            remaining: List[Optional[List[int]]] = [None] * leaf_codes.shape[0]

            def bucket_of(leaf: int) -> List[int]:
                bucket = remaining[leaf]
                if bucket is None:
                    bucket = slot_list[bucket_starts[leaf] : bucket_ends[leaf]]
                    remaining[leaf] = bucket
                return bucket

        else:
            # Exact mode only ever takes points off a bucket's SFC-extreme
            # ends, so every bucket is a shrinking [win_lo, win_hi) window
            # into the slot permutation -- no per-leaf lists, and the whole
            # wavefront leaf stage is a vector gather.  The one exception is
            # the random seed pick; its hole is closed physically, once.
            slot_arr = slot_to_original.copy()
            win_lo = np.array(leaf_starts, dtype=np.intp)
            win_hi = np.array(leaf_ends, dtype=np.intp)

        # Flat Octree-Table: per level, the sorted unique prefixes plus
        # remaining counts (so exhausted subtrees are skipped during the
        # descent) and picked counts (so the walk prefers subtrees that have
        # not yet contributed a sample.  Genuine FPS naturally avoids regions
        # that already contain picked points because their distance-to-S
        # collapses; the Octree walk reproduces that with one "picked"
        # counter per node, which in hardware is a small per-entry tag in
        # the Octree-Table.)
        level_codes: List[Optional[np.ndarray]] = [None] * (depth + 1)
        leaf_to_node: List[Optional[np.ndarray]] = [None] * (depth + 1)
        parent_index: List[Optional[np.ndarray]] = [None] * (depth + 1)
        level_codes[depth] = leaf_codes
        leaf_to_node[depth] = np.arange(leaf_codes.shape[0], dtype=np.intp)
        for level in range(depth - 1, 0, -1):
            codes, parent_of = np.unique(
                level_codes[level + 1] >> 3, return_inverse=True
            )
            level_codes[level] = codes
            leaf_to_node[level] = parent_of[leaf_to_node[level + 1]]
            parent_index[level + 1] = parent_of

        remaining_count: List[Optional[np.ndarray]] = [None] * (depth + 1)
        picked_count: List[Optional[np.ndarray]] = [None] * (depth + 1)
        for level in range(1, depth + 1):
            remaining_count[level] = np.bincount(
                leaf_to_node[level],
                weights=leaf_counts,
                minlength=level_codes[level].shape[0],
            ).astype(np.int64)
            picked_count[level] = np.zeros(
                level_codes[level].shape[0], dtype=np.int64
            )

        # Children of node i at level L are the contiguous slice
        # [child_start[L][i], child_end[L][i]) of level L+1 (both code
        # arrays are sorted, and a child's parent prefix is its code >> 3).
        child_start: List[Optional[np.ndarray]] = [None] * (depth + 1)
        child_end: List[Optional[np.ndarray]] = [None] * (depth + 1)
        for level in range(1, depth):
            # Children are sorted by code, so each node's slice is the
            # run of its own index in the child->parent map built above.
            counts = np.bincount(
                parent_index[level + 1],
                minlength=level_codes[level].shape[0],
            )
            child_end[level] = np.cumsum(counts)
            child_start[level] = child_end[level] - counts

        # Invert the leaf-major slot permutation instead of binary-searching
        # every point's code against the leaf array.
        leaf_of_slot = np.repeat(
            np.arange(leaf_codes.shape[0], dtype=np.intp), leaf_counts
        )
        leaf_of_point = leaf_of_slot[layout.original_to_slot]

        def consume(original_index: int) -> None:
            nonlocal slot_arr
            leaf_index = int(leaf_of_point[original_index])
            if self._approximate:
                bucket_of(leaf_index).remove(original_index)
            else:
                lo = int(win_lo[leaf_index])
                hi = int(win_hi[leaf_index])
                if int(slot_arr[lo]) == original_index:
                    win_lo[leaf_index] = lo + 1
                elif int(slot_arr[hi - 1]) == original_index:
                    win_hi[leaf_index] = hi - 1
                else:
                    # The random seed pick is the only mid-window removal:
                    # close the hole physically so windows stay contiguous.
                    pos = lo + int(
                        np.flatnonzero(slot_arr[lo:hi] == original_index)[0]
                    )
                    slot_arr = np.delete(slot_arr, pos)
                    win_lo[win_lo > pos] -= 1
                    win_hi[win_hi > pos] -= 1
            for level in range(1, depth + 1):
                node = leaf_to_node[level][leaf_index]
                remaining_count[level][node] -= 1
                picked_count[level][node] += 1

        box = octree.box
        box_minimum = box.minimum
        extent = np.where(box.size > 0, box.size, 1.0)
        resolution = float(1 << depth)
        top_cell = float((1 << depth) - 1)

        # Plain-int copies of the per-level codes for the one-sample walk:
        # a node's slice holds at most eight children, where Python ints
        # beat array dispatch by an order of magnitude.
        level_codes_list: List[Optional[List[int]]] = [None] * (depth + 1)
        for level in range(1, depth + 1):
            level_codes_list[level] = level_codes[level].tolist()

        def descend(seed_code: int) -> int:
            """Walk the table picking the farthest non-exhausted voxel per
            level: among the least-picked children the largest Hamming
            distance from the seed voxel wins, earliest SFC position
            breaking ties.  Pure-int inner loop over the <= 8 children of a
            slice; keys, tie-breaks, and counters are exactly those of the
            array-ranked reference walk
            (:func:`repro.kernels.reference.ois_sample_scalar`)."""
            lo, hi = 0, level_codes[1].shape[0]
            node_index = 0
            for level in range(1, depth + 1):
                counters.node_visits += 1
                rem = remaining_count[level][lo:hi].tolist()
                pick = picked_count[level][lo:hi].tolist()
                codes = level_codes_list[level]
                seed_prefix = seed_code >> (3 * (depth - level))
                num_eligible = 0
                best_key = None
                # (-picked, hamming) packed into one int key (hamming < 64
                # = one 6-bit digit); strict > keeps the first maximum,
                # matching the argmax SFC-order tie-break.
                for offset in range(hi - lo):
                    if rem[offset] <= 0:
                        continue
                    num_eligible += 1
                    key = (codes[lo + offset] ^ seed_prefix).bit_count() - (
                        pick[offset] << 6
                    )
                    if best_key is None or key > best_key:
                        best_key = key
                        node_index = lo + offset
                if num_eligible == 0:
                    raise RuntimeError(
                        "octree exhausted before collecting the requested"
                        " samples"
                    )
                counters.hamming_ops += num_eligible
                counters.onchip_reads += num_eligible
                counters.compare_ops += num_eligible
                if level < depth:
                    lo = int(child_start[level][node_index])
                    hi = int(child_end[level][node_index])

            if self._approximate:
                candidates = bucket_of(node_index)
                choice = int(rng.integers(len(candidates)))
                return candidates[choice]
            # Exact rule: the SFC-extreme point of the leaf, i.e. the end of
            # the intra-leaf SFC order farthest from the seed side of the
            # curve.
            if seed_code <= int(leaf_codes[node_index]):
                return int(slot_arr[int(win_hi[node_index]) - 1])
            return int(slot_arr[int(win_lo[node_index])])

        def descend_wavefront(
            seed_code: int, rounds: int
        ) -> Tuple[np.ndarray, np.ndarray]:
            """Simulate the next ``rounds`` serial picks under a frozen
            summary code in one level-synchronous pass.

            Returns ``(paths, eligible)``: ``paths[j, level]`` is the node
            pick ``j`` routes through at ``level`` and ``eligible[j,
            level]`` the eligible-children count it saw there (the
            per-level ``hamming_ops`` charge).  Pure: committed table state
            is only read, so a rejected speculation leaves no trace.
            """
            paths = np.empty((rounds, depth + 1), dtype=np.intp)
            eligible = np.empty((rounds, depth + 1), dtype=np.int64)
            lane_ids = np.arange(rounds, dtype=np.intp)
            group_lo = np.zeros(1, dtype=np.intp)
            group_hi = np.array([level_codes[1].shape[0]], dtype=np.intp)
            group_rounds = np.array([rounds], dtype=np.int64)
            tail = False
            for level in range(1, depth + 1):
                seed_prefix = seed_code >> (3 * (depth - level))
                if tail or group_lo.shape[0] == rounds:
                    # Every lane is alone in its subtree (and stays alone:
                    # disjoint subtrees never re-merge below), so each group
                    # ranks exactly one pick -- per-segment argmax with no
                    # regroup needed, the dominant regime of deep levels.
                    tail = True
                    winners, elig = wavefront_singleton_winners(
                        level_codes[level],
                        picked_count[level],
                        remaining_count[level],
                        seed_prefix,
                        group_lo,
                        group_hi,
                    )
                    paths[lane_ids, level] = winners
                    eligible[lane_ids, level] = elig
                    if level < depth:
                        group_lo = child_start[level][winners]
                        group_hi = child_end[level][winners]
                    continue
                winners, elig = wavefront_level_winners(
                    level_codes[level],
                    picked_count[level],
                    remaining_count[level],
                    seed_prefix,
                    group_lo,
                    group_hi,
                    group_rounds,
                )
                paths[lane_ids, level] = winners
                eligible[lane_ids, level] = elig
                if level < depth:
                    # Split the wavefront along the winners: picks routed
                    # into the same subtree keep their serial order
                    # (ascending lane id); picks in different subtrees no
                    # longer interact below this level.
                    order = np.lexsort((lane_ids, winners))
                    lane_ids = lane_ids[order]
                    sorted_winners = winners[order]
                    first = np.empty(sorted_winners.shape[0], dtype=bool)
                    first[0] = True
                    np.not_equal(
                        sorted_winners[1:], sorted_winners[:-1], out=first[1:]
                    )
                    nodes = sorted_winners[first]
                    starts = np.flatnonzero(first)
                    group_lo = child_start[level][nodes]
                    group_hi = child_end[level][nodes]
                    group_rounds = np.diff(
                        np.append(starts, sorted_winners.shape[0])
                    )
            return paths, eligible

        def validated_prefix(candidates: List[int]) -> Tuple[int, np.ndarray]:
            """How much of a speculative run is legitimate.

            Pick ``j`` of the run is only what the serial loop would have
            picked if the summary code after picks ``0..j-1`` still equals
            the frozen one.  The running coordinate sums come out of one
            ``cumsum`` (sequential accumulation, so IEEE-identical to the
            serial ``+=``), every mean maps to its voxel cell with the same
            correctly-rounded elementwise ops as ``encode_point_scalar``,
            and code equality is checked as cell equality (the m-code
            interleaving is injective on clipped cells) -- row 0 is the
            current mean itself, i.e. the frozen summary cell.  Returns
            ``(accepted, sums)`` with ``sums[j + 1]`` the coordinate sum
            after pick ``j``.
            """
            rounds = len(candidates)
            stacked = np.vstack(
                (
                    picked_codes_sum[None, :],
                    cloud.points[np.asarray(candidates, dtype=np.intp)],
                )
            )
            sums = np.cumsum(stacked, axis=0)
            counts = np.arange(
                len(picked), len(picked) + rounds + 1, dtype=np.float64
            )
            relative = (sums / counts[:, None] - box_minimum) / extent
            cells = np.clip(np.floor(relative * resolution), 0.0, top_cell)
            bad = (cells[1:rounds] != cells[0]).any(axis=1)
            mismatch = np.flatnonzero(bad)
            accepted = rounds if mismatch.size == 0 else int(mismatch[0]) + 1
            return accepted, sums

        def run_wavefront_exact(seed_code: int, rounds: int) -> int:
            nonlocal picked_codes_sum
            paths, eligible = descend_wavefront(seed_code, rounds)
            # Speculative leaf stage: round r of a leaf takes the r-th
            # entry from the seed-farthest end of the leaf's SFC order.
            # ``occ`` is each lane's round index within its leaf (lanes of
            # a leaf are in serial order, so occurrence order in the lane
            # array is round order) and the window arrays turn the pick
            # into one gather from the slot permutation.
            leaf_lanes = paths[:, depth]
            high = leaf_codes[leaf_lanes] >= seed_code
            order = np.argsort(leaf_lanes, kind="stable")
            sorted_leaves = leaf_lanes[order]
            first = np.empty(rounds, dtype=bool)
            first[0] = True
            np.not_equal(sorted_leaves[1:], sorted_leaves[:-1], out=first[1:])
            starts = np.flatnonzero(first)
            seg_of = np.cumsum(first) - 1
            occ = np.empty(rounds, dtype=np.intp)
            occ[order] = np.arange(rounds, dtype=np.intp) - starts[seg_of]
            slot_idx = np.where(
                high,
                win_hi[leaf_lanes] - 1 - occ,
                win_lo[leaf_lanes] + occ,
            )
            candidates = slot_arr[slot_idx]
            accepted, sums = validated_prefix(candidates)

            # Commit the legitimate prefix.
            picked.extend(candidates[:accepted].tolist())
            picked_codes_sum = sums[accepted].copy()
            for level in range(1, depth + 1):
                nodes = paths[:accepted, level]
                np.add.at(remaining_count[level], nodes, -1)
                np.add.at(picked_count[level], nodes, 1)
            acc_leaves = leaf_lanes[:accepted]
            acc_high = high[:accepted]
            np.add.at(win_hi, acc_leaves[acc_high], -1)
            np.add.at(win_lo, acc_leaves[~acc_high], 1)
            counters.host_memory_reads += accepted
            counters.onchip_writes += accepted
            counters.node_visits += accepted * depth
            work = int(eligible[:accepted, 1:].sum())
            counters.hamming_ops += work
            counters.onchip_reads += work
            counters.compare_ops += work
            return accepted

        def run_wavefront_approx(seed_code: int, rounds: int) -> int:
            """Approximate mode commits lane by lane: each accepted pick
            draws from the leaf RNG exactly like the serial loop (and a
            rejected lane is detected *before* its draw, so the RNG stream
            never diverges), but the descents themselves are still fused.
            """
            nonlocal picked_codes_sum
            paths, eligible = descend_wavefront(seed_code, rounds)
            accepted = 0
            for lane in range(rounds):
                if lane > 0:
                    summary_point = picked_codes_sum / len(picked)
                    code = encode_point_scalar(
                        summary_point, box_minimum, extent, depth
                    )
                    if code != seed_code:
                        break
                bucket = bucket_of(int(paths[lane, depth]))
                choice = int(rng.integers(len(bucket)))
                original = bucket[choice]
                picked.append(original)
                consume(original)
                picked_codes_sum += cloud.points[original]
                counters.host_memory_reads += 1
                counters.onchip_writes += 1
                counters.node_visits += depth
                work = int(eligible[lane, 1:].sum())
                counters.hamming_ops += work
                counters.onchip_reads += work
                counters.compare_ops += work
                accepted = lane + 1
            return accepted

        picked: List[int] = []
        picked_codes_sum = np.zeros(3, dtype=np.float64)

        # Seed point: random pick, written into the first SPT entry.
        seed_index = int(rng.integers(cloud.num_points))
        picked.append(seed_index)
        consume(seed_index)
        picked_codes_sum += cloud.points[seed_index]
        counters.host_memory_reads += 1
        counters.onchip_writes += 1

        # Adaptive wavefront: speculate only on demonstrated stability.
        # Early on the mean crosses voxel boundaries almost every pick, so
        # the loop stays on the one-sample-at-a-time walk until the summary
        # code has repeated; each fully-accepted wavefront then grows the
        # width, and any truncation (or loss of stability) collapses it.
        initial_width = min(_INITIAL_WIDTH, self._wavefront)
        width = initial_width
        stable_run = 0
        previous_code: Optional[int] = None
        while len(picked) < num_samples:
            # Virtual summary point ||S||_2 of the picked set (Section V-B).
            summary_point = picked_codes_sum / len(picked)
            summary_code = encode_point_scalar(
                summary_point, box_minimum, extent, depth
            )
            stable_run = stable_run + 1 if summary_code == previous_code else 0
            previous_code = summary_code
            budget = num_samples - len(picked)
            if (
                self._wavefront == 1
                or budget == 1
                or stable_run < _STABLE_RUN_THRESHOLD
            ):
                next_index = descend(summary_code)
                picked.append(next_index)
                consume(next_index)
                picked_codes_sum += cloud.points[next_index]
                counters.host_memory_reads += 1
                counters.onchip_writes += 1
                width = initial_width
                continue
            rounds = min(width, budget)
            if self._approximate:
                accepted = run_wavefront_approx(summary_code, rounds)
            else:
                accepted = run_wavefront_exact(summary_code, rounds)
            if accepted == rounds:
                width = min(rounds * _GROWTH, self._wavefront)
        return picked
