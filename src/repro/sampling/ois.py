"""Octree-Indexed Sampling (OIS) -- the paper's Algorithm 2.

OIS replaces the point-wise distance scans of FPS with spatial-index
operations:

1. **Octree-build Unit (CPU):** build an octree over the raw frame in a
   single pass and reorganise the points in host memory into SFC leaf order
   (:class:`~repro.octree.memory_layout.HostMemoryLayout`).
2. **Down-sampling Unit (FPGA):** to pick the next sample, descend the
   Octree-Table from the root, at every level choosing the child voxel whose
   m-code is farthest (by Hamming distance) from the current seed voxel;
   within the reached leaf the point is chosen by SFC order.  Only the
   finally selected point is read from host memory, so the per-iteration
   memory traffic drops from O(N) to O(depth).

The functional implementation below produces a real sample set and real
operation counts; the paper-scale analytic model is exposed separately as
:func:`ois_counter_model` so benchmarks can report counts for million-point
frames without materialising them.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.metrics import OpCounters
from repro.geometry.pointcloud import PointCloud
from repro.kernels import encode_point_scalar, hamming_codes
from repro.geometry.voxelgrid import suggest_depth
from repro.octree.builder import Octree
from repro.octree.memory_layout import HostMemoryLayout
from repro.sampling.base import Sampler, SamplingResult


def ois_counter_model(
    num_points: int,
    num_samples: int,
    octree_depth: int,
    num_sampling_modules: int = 8,
    include_build: bool = True,
) -> OpCounters:
    """Analytic operation counts of Algorithm 2.

    * Octree build: one streaming read of the raw frame plus one write per
      point for the reorganised copy (when ``include_build``).
    * Per sample: one Octree-Table walk of ``octree_depth`` levels.  At each
      level the Sampling Modules evaluate up to eight child voxels
      (Hamming distances) in parallel; all of that traffic stays on chip.
    * Per sample: exactly one host-memory read (the picked point) and one
      on-chip write into the Sampled-Point-Table.
    """
    if octree_depth < 1:
        raise ValueError("octree_depth must be >= 1")
    counters = OpCounters()
    if include_build:
        counters.host_memory_reads += num_points
        counters.host_memory_writes += num_points
        # m-code computation + bucket insertion during the single build pass
        # (kept consistent with ``hardware.octree_build_unit``).
        counters.compare_ops += num_points * (octree_depth + 2)
    per_level_children = min(8, max(1, num_sampling_modules))
    counters.node_visits += num_samples * octree_depth
    counters.hamming_ops += num_samples * octree_depth * per_level_children
    counters.onchip_reads += num_samples * octree_depth * per_level_children
    counters.compare_ops += num_samples * octree_depth * per_level_children
    counters.host_memory_reads += num_samples
    counters.onchip_writes += num_samples
    return counters


class OctreeIndexedSampler(Sampler):
    """Functional OIS implementation with operation accounting.

    Parameters
    ----------
    octree_depth:
        Depth of the octree; ``None`` picks a depth from the frame size.
    num_sampling_modules:
        Voxel-level parallelism of the Down-sampling Unit (Figure 7b).  The
        functional result does not depend on it; the hardware latency model
        does, and the counters record the work as if all children of a node
        are evaluated (which the modules do in parallel).
    approximate:
        Enable the approximate OIS-based FPS of Section VIII-A: once the
        walk reaches the leaf, a random unpicked point of the leaf replaces
        the SFC-extreme point.
    count_build_at_scale:
        When given, build-phase counters are reported for a frame of this
        many points (paper-scale) while the functional pass runs on the
        actual input.
    """

    name = "ois"

    def __init__(
        self,
        octree_depth: Optional[int] = None,
        num_sampling_modules: int = 8,
        approximate: bool = False,
        seed: int = 0,
        count_build_at_scale: Optional[int] = None,
    ):
        self._octree_depth = octree_depth
        self._num_sampling_modules = num_sampling_modules
        self._approximate = approximate
        self._seed = seed
        self._count_build_at_scale = count_build_at_scale

    # ------------------------------------------------------------------
    def sample(
        self,
        cloud: PointCloud,
        num_samples: int,
        octree: Optional[Octree] = None,
    ) -> SamplingResult:
        """Down-sample ``cloud``; optionally reuse a pre-built ``octree``.

        Passing a pre-built octree models the amortisation the paper points
        out: the VEG method of the Inference Engine reuses the same octree,
        so its build cost is paid once per frame.
        """
        self._validate(cloud, num_samples)
        rng = np.random.default_rng(self._seed)
        counters = OpCounters()

        depth = self._octree_depth or suggest_depth(cloud.num_points)
        if octree is None:
            octree = Octree.build(cloud, depth=depth)
            build_reads = octree.stats.host_memory_reads
            build_writes = octree.stats.host_memory_writes
            if self._count_build_at_scale is not None:
                scale = self._count_build_at_scale / max(1, cloud.num_points)
                build_reads = int(round(build_reads * scale))
                build_writes = int(round(build_writes * scale))
            counters.host_memory_reads += build_reads
            counters.host_memory_writes += build_writes
        else:
            depth = octree.depth
        layout = HostMemoryLayout.from_octree(octree)

        picked = self._run_sampling_loop(
            octree, layout, num_samples, rng, counters
        )
        return self._result(
            cloud,
            np.asarray(picked, dtype=np.intp),
            counters,
            info={
                "octree_depth": depth,
                "octree_nodes": octree.num_nodes,
                "octree_leaves": octree.num_leaves,
                "octree_build_stats": octree.stats,
                "approximate": self._approximate,
            },
        )

    # ------------------------------------------------------------------
    def _run_sampling_loop(
        self,
        octree: Octree,
        layout: HostMemoryLayout,
        num_samples: int,
        rng: np.random.Generator,
        counters: OpCounters,
    ) -> List[int]:
        """Vectorized Octree-Table walk over flat per-level node arrays.

        The scalar predecessor (retained as
        :func:`repro.kernels.reference.ois_scalar`) kept remaining/picked
        counts in ``(level, prefix)`` dicts and iterated the children of
        every visited node in Python; here each level of the table is a
        sorted code array whose children occupy a contiguous slice of the
        next level, candidate ranking is one array-wide XOR+popcount per
        level, and the setup is pure array indexing.  Selected indices and
        all counters are bit-identical to the scalar path.
        """
        depth = octree.depth
        cloud = octree.cloud
        point_codes = octree.point_codes
        leaf_codes = octree.leaf_codes

        # Remaining (unpicked) points per leaf, kept in SFC slot order so the
        # "farthest point by SFC traversal" rule is an end-of-list access.
        # slot_to_original is already leaf-major in ascending-code order, so
        # each leaf's remaining list is one contiguous slice of it.
        slot_to_original = layout.slot_to_original
        sorted_codes = point_codes[slot_to_original]
        leaf_starts = np.searchsorted(sorted_codes, leaf_codes, side="left")
        leaf_ends = np.searchsorted(sorted_codes, leaf_codes, side="right")
        remaining: List[List[int]] = [
            slot_to_original[start:end].tolist()
            for start, end in zip(leaf_starts, leaf_ends)
        ]
        leaf_counts = leaf_ends - leaf_starts

        # Flat Octree-Table: per level, the sorted unique prefixes plus
        # remaining counts (so exhausted subtrees are skipped during the
        # descent) and picked counts (so the walk prefers subtrees that have
        # not yet contributed a sample.  Genuine FPS naturally avoids regions
        # that already contain picked points because their distance-to-S
        # collapses; the Octree walk reproduces that with one "picked"
        # counter per node, which in hardware is a small per-entry tag in
        # the Octree-Table.)
        level_codes: List[Optional[np.ndarray]] = [None] * (depth + 1)
        leaf_to_node: List[Optional[np.ndarray]] = [None] * (depth + 1)
        level_codes[depth] = leaf_codes
        leaf_to_node[depth] = np.arange(leaf_codes.shape[0], dtype=np.intp)
        for level in range(depth - 1, 0, -1):
            codes, parent_of = np.unique(
                level_codes[level + 1] >> 3, return_inverse=True
            )
            level_codes[level] = codes
            leaf_to_node[level] = parent_of[leaf_to_node[level + 1]]

        remaining_count: List[Optional[np.ndarray]] = [None] * (depth + 1)
        picked_count: List[Optional[np.ndarray]] = [None] * (depth + 1)
        for level in range(1, depth + 1):
            remaining_count[level] = np.bincount(
                leaf_to_node[level],
                weights=leaf_counts,
                minlength=level_codes[level].shape[0],
            ).astype(np.int64)
            picked_count[level] = np.zeros(
                level_codes[level].shape[0], dtype=np.int64
            )

        # Children of node i at level L are the contiguous slice
        # [child_start[L][i], child_end[L][i]) of level L+1 (both code
        # arrays are sorted, and a child's parent prefix is its code >> 3).
        child_start: List[Optional[np.ndarray]] = [None] * (depth + 1)
        child_end: List[Optional[np.ndarray]] = [None] * (depth + 1)
        for level in range(1, depth):
            parents = level_codes[level + 1] >> 3
            child_start[level] = np.searchsorted(
                parents, level_codes[level], side="left"
            )
            child_end[level] = np.searchsorted(
                parents, level_codes[level], side="right"
            )

        leaf_of_point = np.searchsorted(leaf_codes, point_codes)

        def consume(original_index: int) -> None:
            leaf_index = int(leaf_of_point[original_index])
            remaining[leaf_index].remove(original_index)
            for level in range(1, depth + 1):
                node = leaf_to_node[level][leaf_index]
                remaining_count[level][node] -= 1
                picked_count[level][node] += 1

        box = octree.box
        box_minimum = box.minimum
        extent = np.where(box.size > 0, box.size, 1.0)
        key_floor = np.int64(np.iinfo(np.int64).min)

        def descend(seed_code: int) -> int:
            """Walk the table picking the farthest non-exhausted voxel per
            level: among the least-picked children the largest Hamming
            distance from the seed voxel wins (ranked array-wide per level,
            exactly the comparison the Sampling Modules perform in
            parallel), earliest SFC position breaking ties."""
            lo, hi = 0, level_codes[1].shape[0]
            node_index = 0
            for level in range(1, depth + 1):
                counters.node_visits += 1
                rem = remaining_count[level][lo:hi]
                eligible = rem > 0
                num_eligible = int(eligible.sum())
                if num_eligible == 0:
                    raise RuntimeError(
                        "octree exhausted before collecting the requested"
                        " samples"
                    )
                counters.hamming_ops += num_eligible
                counters.onchip_reads += num_eligible
                counters.compare_ops += num_eligible
                seed_prefix = seed_code >> (3 * (depth - level))
                # Lexicographic (-picked, hamming) packed into one int key
                # (hamming < 64 = one 6-bit digit); argmax takes the first
                # maximum, matching the scalar SFC-order tie-break.
                key = hamming_codes(level_codes[level][lo:hi], seed_prefix) - (
                    picked_count[level][lo:hi] << 6
                )
                key = np.where(eligible, key, key_floor)
                node_index = lo + int(np.argmax(key))
                if level < depth:
                    lo = int(child_start[level][node_index])
                    hi = int(child_end[level][node_index])

            candidates = remaining[node_index]
            if self._approximate:
                choice = int(rng.integers(len(candidates)))
                return candidates[choice]
            # Exact rule: the SFC-extreme point of the leaf, i.e. the end of
            # the intra-leaf SFC order farthest from the seed side of the
            # curve.
            if seed_code <= int(leaf_codes[node_index]):
                return candidates[-1]
            return candidates[0]

        picked: List[int] = []
        picked_codes_sum = np.zeros(3, dtype=np.float64)

        # Seed point: random pick, written into the first SPT entry.
        seed_index = int(rng.integers(cloud.num_points))
        picked.append(seed_index)
        consume(seed_index)
        picked_codes_sum += cloud.points[seed_index]
        counters.host_memory_reads += 1
        counters.onchip_writes += 1

        while len(picked) < num_samples:
            # Virtual summary point ||S||_2 of the picked set (Section V-B).
            summary_point = picked_codes_sum / len(picked)
            summary_code = encode_point_scalar(
                summary_point, box_minimum, extent, depth
            )
            next_index = descend(summary_code)
            picked.append(next_index)
            consume(next_index)
            picked_codes_sum += cloud.points[next_index]
            counters.host_memory_reads += 1
            counters.onchip_writes += 1
        return picked
