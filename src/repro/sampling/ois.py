"""Octree-Indexed Sampling (OIS) -- the paper's Algorithm 2.

OIS replaces the point-wise distance scans of FPS with spatial-index
operations:

1. **Octree-build Unit (CPU):** build an octree over the raw frame in a
   single pass and reorganise the points in host memory into SFC leaf order
   (:class:`~repro.octree.memory_layout.HostMemoryLayout`).
2. **Down-sampling Unit (FPGA):** to pick the next sample, descend the
   Octree-Table from the root, at every level choosing the child voxel whose
   m-code is farthest (by Hamming distance) from the current seed voxel;
   within the reached leaf the point is chosen by SFC order.  Only the
   finally selected point is read from host memory, so the per-iteration
   memory traffic drops from O(N) to O(depth).

The functional implementation below produces a real sample set and real
operation counts; the paper-scale analytic model is exposed separately as
:func:`ois_counter_model` so benchmarks can report counts for million-point
frames without materialising them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.metrics import OpCounters
from repro.geometry.morton import (
    hamming_distance,
    morton_encode_points,
    prefix_at_level,
)
from repro.geometry.pointcloud import PointCloud
from repro.geometry.voxelgrid import suggest_depth
from repro.octree.builder import Octree
from repro.octree.memory_layout import HostMemoryLayout
from repro.sampling.base import Sampler, SamplingResult


def ois_counter_model(
    num_points: int,
    num_samples: int,
    octree_depth: int,
    num_sampling_modules: int = 8,
    include_build: bool = True,
) -> OpCounters:
    """Analytic operation counts of Algorithm 2.

    * Octree build: one streaming read of the raw frame plus one write per
      point for the reorganised copy (when ``include_build``).
    * Per sample: one Octree-Table walk of ``octree_depth`` levels.  At each
      level the Sampling Modules evaluate up to eight child voxels
      (Hamming distances) in parallel; all of that traffic stays on chip.
    * Per sample: exactly one host-memory read (the picked point) and one
      on-chip write into the Sampled-Point-Table.
    """
    if octree_depth < 1:
        raise ValueError("octree_depth must be >= 1")
    counters = OpCounters()
    if include_build:
        counters.host_memory_reads += num_points
        counters.host_memory_writes += num_points
        # m-code computation + bucket insertion during the single build pass
        # (kept consistent with ``hardware.octree_build_unit``).
        counters.compare_ops += num_points * (octree_depth + 2)
    per_level_children = min(8, max(1, num_sampling_modules))
    counters.node_visits += num_samples * octree_depth
    counters.hamming_ops += num_samples * octree_depth * per_level_children
    counters.onchip_reads += num_samples * octree_depth * per_level_children
    counters.compare_ops += num_samples * octree_depth * per_level_children
    counters.host_memory_reads += num_samples
    counters.onchip_writes += num_samples
    return counters


class OctreeIndexedSampler(Sampler):
    """Functional OIS implementation with operation accounting.

    Parameters
    ----------
    octree_depth:
        Depth of the octree; ``None`` picks a depth from the frame size.
    num_sampling_modules:
        Voxel-level parallelism of the Down-sampling Unit (Figure 7b).  The
        functional result does not depend on it; the hardware latency model
        does, and the counters record the work as if all children of a node
        are evaluated (which the modules do in parallel).
    approximate:
        Enable the approximate OIS-based FPS of Section VIII-A: once the
        walk reaches the leaf, a random unpicked point of the leaf replaces
        the SFC-extreme point.
    count_build_at_scale:
        When given, build-phase counters are reported for a frame of this
        many points (paper-scale) while the functional pass runs on the
        actual input.
    """

    name = "ois"

    def __init__(
        self,
        octree_depth: Optional[int] = None,
        num_sampling_modules: int = 8,
        approximate: bool = False,
        seed: int = 0,
        count_build_at_scale: Optional[int] = None,
    ):
        self._octree_depth = octree_depth
        self._num_sampling_modules = num_sampling_modules
        self._approximate = approximate
        self._seed = seed
        self._count_build_at_scale = count_build_at_scale

    # ------------------------------------------------------------------
    def sample(
        self,
        cloud: PointCloud,
        num_samples: int,
        octree: Optional[Octree] = None,
    ) -> SamplingResult:
        """Down-sample ``cloud``; optionally reuse a pre-built ``octree``.

        Passing a pre-built octree models the amortisation the paper points
        out: the VEG method of the Inference Engine reuses the same octree,
        so its build cost is paid once per frame.
        """
        self._validate(cloud, num_samples)
        rng = np.random.default_rng(self._seed)
        counters = OpCounters()

        depth = self._octree_depth or suggest_depth(cloud.num_points)
        if octree is None:
            octree = Octree.build(cloud, depth=depth)
            build_reads = octree.stats.host_memory_reads
            build_writes = octree.stats.host_memory_writes
            if self._count_build_at_scale is not None:
                scale = self._count_build_at_scale / max(1, cloud.num_points)
                build_reads = int(round(build_reads * scale))
                build_writes = int(round(build_writes * scale))
            counters.host_memory_reads += build_reads
            counters.host_memory_writes += build_writes
        else:
            depth = octree.depth
        layout = HostMemoryLayout.from_octree(octree)

        picked = self._run_sampling_loop(
            octree, layout, num_samples, rng, counters
        )
        return self._result(
            cloud,
            np.asarray(picked, dtype=np.intp),
            counters,
            info={
                "octree_depth": depth,
                "octree_nodes": octree.num_nodes,
                "octree_leaves": octree.num_leaves,
                "octree_build_stats": octree.stats,
                "approximate": self._approximate,
            },
        )

    # ------------------------------------------------------------------
    def _run_sampling_loop(
        self,
        octree: Octree,
        layout: HostMemoryLayout,
        num_samples: int,
        rng: np.random.Generator,
        counters: OpCounters,
    ) -> List[int]:
        depth = octree.depth
        cloud = octree.cloud
        point_codes = octree.point_codes

        # Remaining (unpicked) points per leaf, kept in SFC slot order so the
        # "farthest point by SFC traversal" rule is an end-of-list access.
        remaining: Dict[int, List[int]] = {}
        for leaf in octree.leaves_in_sfc_order():
            slots = sorted(
                layout.slot_of_original(int(i)) for i in leaf.point_indices
            )
            remaining[leaf.code] = [int(layout.slot_to_original[s]) for s in slots]
        # Remaining counts per (level, prefix) so exhausted subtrees are
        # skipped during the descent, and picked counts per prefix so the
        # walk prefers subtrees that have not yet contributed a sample.
        # (Genuine FPS naturally avoids regions that already contain picked
        # points because their distance-to-S collapses; the Octree walk
        # reproduces that with one "picked" counter per node, which in
        # hardware is a small per-entry tag in the Octree-Table.)
        remaining_count: Dict[Tuple[int, int], int] = {}
        picked_count: Dict[Tuple[int, int], int] = {}
        for leaf_code, points in remaining.items():
            for level in range(1, depth + 1):
                key = (level, prefix_at_level(leaf_code, depth, level))
                remaining_count[key] = remaining_count.get(key, 0) + len(points)
                picked_count.setdefault(key, 0)

        def consume(original_index: int) -> None:
            leaf_code = int(point_codes[original_index])
            remaining[leaf_code].remove(original_index)
            for level in range(1, depth + 1):
                key = (level, prefix_at_level(leaf_code, depth, level))
                remaining_count[key] -= 1
                picked_count[key] += 1

        picked: List[int] = []
        picked_codes_sum = np.zeros(3, dtype=np.float64)

        # Seed point: random pick, written into the first SPT entry.
        seed_index = int(rng.integers(cloud.num_points))
        picked.append(seed_index)
        consume(seed_index)
        picked_codes_sum += cloud.points[seed_index]
        counters.host_memory_reads += 1
        counters.onchip_writes += 1

        while len(picked) < num_samples:
            # Virtual summary point ||S||_2 of the picked set (Section V-B).
            summary_point = picked_codes_sum / len(picked)
            summary_code = int(
                morton_encode_points(summary_point[None, :], octree.box, depth)[0]
            )
            next_index = self._descend(
                octree,
                summary_code,
                remaining,
                remaining_count,
                picked_count,
                rng,
                counters,
            )
            picked.append(next_index)
            consume(next_index)
            picked_codes_sum += cloud.points[next_index]
            counters.host_memory_reads += 1
            counters.onchip_writes += 1
        return picked

    def _descend(
        self,
        octree: Octree,
        seed_code: int,
        remaining: Dict[int, List[int]],
        remaining_count: Dict[Tuple[int, int], int],
        picked_count: Dict[Tuple[int, int], int],
        rng: np.random.Generator,
        counters: OpCounters,
    ) -> int:
        """Walk the octree picking the farthest non-exhausted voxel per level.

        Children that have contributed fewer samples so far take priority
        (see the comment in :meth:`_run_sampling_loop`); among equally-picked
        children the one with the largest Hamming distance from the seed
        voxel wins, exactly the comparison the Sampling Modules perform.
        """
        depth = octree.depth
        node = octree.root
        for level in range(1, depth + 1):
            seed_prefix = prefix_at_level(seed_code, depth, level)
            best_child = None
            best_key = None
            candidates = node.occupied_octants()
            counters.node_visits += 1
            for octant in candidates:
                child = node.children[octant]
                if remaining_count.get((level, child.code), 0) <= 0:
                    continue
                counters.hamming_ops += 1
                counters.onchip_reads += 1
                counters.compare_ops += 1
                distance = hamming_distance(child.code, seed_prefix)
                already_picked = picked_count.get((level, child.code), 0)
                key = (-already_picked, distance)
                if best_key is None or key > best_key:
                    best_key = key
                    best_child = child
            if best_child is None:
                raise RuntimeError(
                    "octree exhausted before collecting the requested samples"
                )
            node = best_child

        candidates = remaining[node.code]
        if self._approximate:
            choice = int(rng.integers(len(candidates)))
            return candidates[choice]
        # Exact rule: the SFC-extreme point of the leaf, i.e. the end of the
        # intra-leaf SFC order farthest from the seed side of the curve.
        if seed_code <= node.code:
            return candidates[-1]
        return candidates[0]
