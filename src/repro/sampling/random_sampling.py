"""Random sampling (RS) and the RS+reinforce surrogate.

Random sampling simply draws K points uniformly without replacement.  It is
the only traditional method fast enough for real-time use on general-purpose
hardware, but its information loss is high (Section II-A).  RandLA-Net-style
pipelines compensate with an encoder ("reinforcement") stage; the paper's
Figure 12 includes such an "RS+reinforce" baseline, which we model as random
sampling plus the extra feature-encoder workload charged to the counters.
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import OpCounters
from repro.geometry.pointcloud import PointCloud
from repro.sampling.base import Sampler, SamplingResult


class RandomSampler(Sampler):
    """Uniform random down-sampling."""

    name = "random"

    def __init__(self, seed: int = 0):
        self._seed = seed

    def sample(self, cloud: PointCloud, num_samples: int) -> SamplingResult:
        self._validate(cloud, num_samples)
        rng = np.random.default_rng(self._seed)
        indices = rng.choice(cloud.num_points, size=num_samples, replace=False)
        counters = OpCounters(
            # One read per selected point, one write for the output; index
            # generation itself touches no point data.
            host_memory_reads=num_samples,
            host_memory_writes=num_samples,
        )
        return self._result(cloud, indices, counters)


class ReinforcedRandomSampler(Sampler):
    """Random sampling followed by an encoder "reinforcement" pass.

    The reinforcement stage of RandLA-Net-style networks runs a local feature
    encoder over the randomly kept points to recover information lost by the
    random selection.  Functionally the selected indices are the random ones;
    the extra cost is the encoder workload, charged as MACs plus one
    neighborhood gather per kept point.  The paper notes this approach is not
    universal (it requires an encoder-decoder network); the flag
    ``requires_encoder_decoder`` records that constraint for reports.
    """

    name = "random+reinforce"
    requires_encoder_decoder = True

    def __init__(
        self,
        seed: int = 0,
        encoder_channels: int = 32,
        neighbors: int = 16,
    ):
        self._seed = seed
        self._encoder_channels = encoder_channels
        self._neighbors = neighbors

    def sample(self, cloud: PointCloud, num_samples: int) -> SamplingResult:
        self._validate(cloud, num_samples)
        base = RandomSampler(seed=self._seed).sample(cloud, num_samples)
        counters = base.counters
        # Encoder workload: for each kept point, gather `neighbors` points
        # (distance computations against a local subset) and run a small
        # shared MLP of `encoder_channels` width over the gathered features.
        counters.distance_computations += num_samples * self._neighbors
        counters.host_memory_reads += num_samples * self._neighbors
        counters.mac_ops += (
            num_samples * self._neighbors * 3 * self._encoder_channels
            + num_samples * self._encoder_channels * self._encoder_channels
        )
        return SamplingResult(
            indices=base.indices,
            counters=counters,
            sampled=base.sampled,
            method=self.name,
            info={
                "encoder_channels": self._encoder_channels,
                "neighbors": self._neighbors,
                "requires_encoder_decoder": True,
            },
        )
