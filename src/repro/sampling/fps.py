"""Farthest-point sampling (FPS) -- the paper's Algorithm 1 baseline.

FPS iteratively adds to the sampled set S the point of the unpicked set
C - S that is farthest from S.  The standard implementation keeps, for every
unpicked point, its distance to the nearest picked point; each iteration
updates that array against the newly picked point and takes the argmax.

This is the memory-intensive baseline of Section III-A: every iteration
streams the whole point array and the whole intermediate-distance array
through memory, so host-memory traffic grows as ``K * N`` while only ``K``
points are ever used afterwards ("over 99% of memory accesses are wasted").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.metrics import OpCounters
from repro.geometry.pointcloud import PointCloud
from repro.sampling.base import Sampler, SamplingResult


def fps_counter_model(num_points: int, num_samples: int) -> OpCounters:
    """Analytic operation counts of Algorithm 1 for a frame of ``num_points``.

    Per iteration the common implementation

    * reads every unpicked point's coordinates              (~N reads),
    * reads the current nearest-distance entry of every point (~N reads),
    * writes the updated distances back                      (~N writes),
    * re-reads the distance array for the ranking/argmax pass (~N reads)
      ("all of the computed distances are written into the memory, and then
      read again after all distances are calculated", Section III-A),
    * performs one distance computation and one comparison per point.

    The model charges the full ``N`` per iteration (the picked set is tiny
    compared to N), matching the asymptotic behaviour the paper analyses.
    """
    if num_points <= 0 or num_samples <= 0:
        raise ValueError("num_points and num_samples must be positive")
    counters = OpCounters()
    iterations = num_samples
    counters.host_memory_reads = iterations * 3 * num_points
    counters.host_memory_writes = iterations * num_points
    counters.distance_computations = iterations * num_points
    counters.compare_ops = iterations * num_points
    # The K selected points are written out once.
    counters.host_memory_writes += num_samples
    return counters


class FarthestPointSampler(Sampler):
    """Exact farthest-point sampling with operation accounting."""

    name = "fps"

    def __init__(self, seed: int = 0, count_at_scale: Optional[int] = None):
        """
        Parameters
        ----------
        seed:
            RNG seed used to pick the initial seed point.
        count_at_scale:
            When given, the reported counters are evaluated for a frame of
            this many points instead of the actual input size.  Benchmarks
            use this to run the functional algorithm on a scaled-down frame
            while reporting paper-scale operation counts.
        """
        self._seed = seed
        self._count_at_scale = count_at_scale

    def sample(self, cloud: PointCloud, num_samples: int) -> SamplingResult:
        self._validate(cloud, num_samples)
        rng = np.random.default_rng(self._seed)
        points = cloud.points
        num_points = cloud.num_points

        selected = np.empty(num_samples, dtype=np.intp)
        selected[0] = rng.integers(num_points)
        # SQUARED distance from every point to the nearest already-picked
        # point.  sqrt is monotone, so min-updates and the argmax pick the
        # same indices as the metric distances while saving one sqrt pass
        # per iteration; the diagnostic radius takes a single sqrt at the
        # end.  (The sqrt-per-iteration variant is retained as
        # ``repro.kernels.reference.fps_scalar``.)
        #
        # Equivalence caveat: sqrt is monotone but not injective on doubles,
        # so two DISTINCT squared distances within ~1 ulp of each other can
        # round to the same metric distance; on such an argmax tie the
        # reference would keep the earlier index while this picks the true
        # (squared) maximum.  That requires two running minima separated by
        # less than one ulp -- not producible by the continuous synthetic
        # clouds the equivalence tests and benchmarks run on.
        nearest_sq = np.full(num_points, np.inf)

        for k in range(1, num_samples):
            last = points[selected[k - 1]]
            dist_sq = ((points - last) ** 2).sum(axis=1)
            np.minimum(nearest_sq, dist_sq, out=nearest_sq)
            # Already-picked points can never be re-selected, even when the
            # cloud contains exact duplicates (all remaining distances zero).
            nearest_sq[selected[k - 1]] = -np.inf
            selected[k] = int(np.argmax(nearest_sq))
        # Mark the final pick's influence for completeness (not needed for
        # selection, but keeps nearest_sq meaningful for diagnostics).
        last = points[selected[-1]]
        np.minimum(
            nearest_sq, ((points - last) ** 2).sum(axis=1), out=nearest_sq
        )

        count_n = self._count_at_scale or num_points
        counters = fps_counter_model(count_n, num_samples)
        return self._result(
            cloud,
            selected,
            counters,
            info={"nearest_distance_max": float(np.sqrt(nearest_sq.max()))},
        )
