"""Farthest-point sampling (FPS) -- the paper's Algorithm 1 baseline.

FPS iteratively adds to the sampled set S the point of the unpicked set
C - S that is farthest from S.  The standard implementation keeps, for every
unpicked point, its distance to the nearest picked point; each iteration
updates that array against the newly picked point and takes the argmax.

This is the memory-intensive baseline of Section III-A: every iteration
streams the whole point array and the whole intermediate-distance array
through memory, so host-memory traffic grows as ``K * N`` while only ``K``
points are ever used afterwards ("over 99% of memory accesses are wasted").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.metrics import OpCounters
from repro.geometry.pointcloud import PointCloud
from repro.sampling.base import Sampler, SamplingResult


def fps_counter_model(num_points: int, num_samples: int) -> OpCounters:
    """Analytic operation counts of Algorithm 1 for a frame of ``num_points``.

    Per iteration the common implementation

    * reads every unpicked point's coordinates              (~N reads),
    * reads the current nearest-distance entry of every point (~N reads),
    * writes the updated distances back                      (~N writes),
    * re-reads the distance array for the ranking/argmax pass (~N reads)
      ("all of the computed distances are written into the memory, and then
      read again after all distances are calculated", Section III-A),
    * performs one distance computation and one comparison per point.

    The model charges the full ``N`` per iteration (the picked set is tiny
    compared to N), matching the asymptotic behaviour the paper analyses.
    """
    if num_points <= 0 or num_samples <= 0:
        raise ValueError("num_points and num_samples must be positive")
    counters = OpCounters()
    iterations = num_samples
    counters.host_memory_reads = iterations * 3 * num_points
    counters.host_memory_writes = iterations * num_points
    counters.distance_computations = iterations * num_points
    counters.compare_ops = iterations * num_points
    # The K selected points are written out once.
    counters.host_memory_writes += num_samples
    return counters


#: Candidate-block length of the blocked distance update.  65536 candidates
#: keep one block's scratch (two component buffers plus the block's slices
#: of the coordinate columns and the running-min array, ~2.5 MiB)
#: cache-resident, where the whole-array update materialises a full
#: difference matrix and squared temporaries per pick and then re-streams
#: the complete nearest-distance array for the argmax.
_FPS_BLOCK_ROWS = 65536


class FarthestPointSampler(Sampler):
    """Exact farthest-point sampling with operation accounting.

    The per-pick distance update runs as the standard blocked
    distance-matrix update: candidate points are processed in cache-sized
    blocks, and each block's distance computation, running-min update, and
    argmax contribution happen in one pass while the block is hot.  The
    coordinates are transposed once into contiguous per-component columns,
    so every kernel of the update is a contiguous 1-D ufunc instead of a
    strided ``axis=1`` reduction.  The squared distance accumulates as
    ``((dx^2 + dy^2) + dz^2)`` -- the same left-to-right association numpy's
    short-axis ``sum(axis=1)`` uses -- and the minimum / strict-greater
    argmax scans compare the same values in the same order as the
    whole-array update, so picks and the diagnostic radius are bit-identical
    to it (and to the frozen scalar reference, see
    ``repro.kernels.reference.fps_scalar``): blocking changes the schedule,
    not the values.
    """

    name = "fps"

    def __init__(self, seed: int = 0, count_at_scale: Optional[int] = None):
        """
        Parameters
        ----------
        seed:
            RNG seed used to pick the initial seed point.
        count_at_scale:
            When given, the reported counters are evaluated for a frame of
            this many points instead of the actual input size.  Benchmarks
            use this to run the functional algorithm on a scaled-down frame
            while reporting paper-scale operation counts.
        """
        self._seed = seed
        self._count_at_scale = count_at_scale

    def sample(self, cloud: PointCloud, num_samples: int) -> SamplingResult:
        self._validate(cloud, num_samples)
        rng = np.random.default_rng(self._seed)
        points = cloud.points
        num_points = cloud.num_points

        selected = np.empty(num_samples, dtype=np.intp)
        selected[0] = rng.integers(num_points)
        # SQUARED distance from every point to the nearest already-picked
        # point.  sqrt is monotone, so min-updates and the argmax pick the
        # same indices as the metric distances while saving one sqrt pass
        # per iteration; the diagnostic radius takes a single sqrt at the
        # end.  (The sqrt-per-iteration variant is retained as
        # ``repro.kernels.reference.fps_scalar``.)
        #
        # Equivalence caveat: sqrt is monotone but not injective on doubles,
        # so two DISTINCT squared distances within ~1 ulp of each other can
        # round to the same metric distance; on such an argmax tie the
        # reference would keep the earlier index while this picks the true
        # (squared) maximum.  That requires two running minima separated by
        # less than one ulp -- not producible by the continuous synthetic
        # clouds the equivalence tests and benchmarks run on.
        nearest_sq = np.full(num_points, np.inf)

        # One transpose pays for contiguous per-component columns across
        # every pick's update.
        columns = np.ascontiguousarray(points.T)
        num_dims = columns.shape[0]
        block = _FPS_BLOCK_ROWS
        width = min(block, num_points)
        dist = np.empty(width)
        component = np.empty(width)

        def update_block(start: int, stop: int, last: np.ndarray) -> np.ndarray:
            """Min-update ``nearest_sq[start:stop]`` against ``last`` in place."""
            size = stop - start
            acc = dist[:size]
            np.subtract(columns[0, start:stop], last[0], out=acc)
            acc *= acc
            for dim in range(1, num_dims):
                part = component[:size]
                np.subtract(columns[dim, start:stop], last[dim], out=part)
                part *= part
                acc += part
            near = nearest_sq[start:stop]
            np.minimum(near, acc, out=near)
            return near

        for k in range(1, num_samples):
            last_index = int(selected[k - 1])
            last = points[last_index]
            best_value = -np.inf
            best_index = 0
            for start in range(0, num_points, block):
                stop = min(start + block, num_points)
                near = update_block(start, stop, last)
                # Already-picked points can never be re-selected, even when
                # the cloud contains exact duplicates (all remaining
                # distances zero); the marker must land before this block's
                # argmax contribution.
                if start <= last_index < stop:
                    near[last_index - start] = -np.inf
                local = int(np.argmax(near))
                # Strict > keeps the earliest block on ties, matching the
                # first-occurrence convention of a whole-array argmax.
                if near[local] > best_value:
                    best_value = float(near[local])
                    best_index = start + local
            selected[k] = best_index
        # Mark the final pick's influence for completeness (not needed for
        # selection, but keeps nearest_sq meaningful for diagnostics).
        last = points[int(selected[-1])]
        for start in range(0, num_points, block):
            update_block(start, min(start + block, num_points), last)

        count_n = self._count_at_scale or num_points
        counters = fps_counter_model(count_n, num_samples)
        return self._result(
            cloud,
            selected,
            counters,
            info={"nearest_distance_max": float(np.sqrt(nearest_sq.max()))},
        )
