"""Down-sampling methods for the pre-processing phase.

The paper compares four samplers (Figure 12):

* :class:`~repro.sampling.fps.FarthestPointSampler` -- the common FPS
  baseline (Algorithm 1 of Figure 6), memory intensive.
* :class:`~repro.sampling.random_sampling.RandomSampler` -- fast but lossy.
* :class:`~repro.sampling.random_sampling.ReinforcedRandomSampler` -- the
  "RS+reinforce" encoder-assisted variant of RandLA-Net-style pipelines.
* :class:`~repro.sampling.ois.OctreeIndexedSampler` -- the paper's OIS method
  (Algorithm 2), which replaces point-wise distance scans with Octree-Table
  lookups and Hamming distances on m-codes.

A voxel-grid sampler is included as an additional commonly used baseline.
All samplers share the :class:`~repro.sampling.base.Sampler` interface and
report :class:`~repro.core.metrics.OpCounters`.
"""

from repro import registry
from repro.sampling.base import Sampler, SamplingResult
from repro.sampling.fps import FarthestPointSampler, fps_counter_model
from repro.sampling.ois import OctreeIndexedSampler, ois_counter_model
from repro.sampling.random_sampling import RandomSampler, ReinforcedRandomSampler
from repro.sampling.voxel_grid_sampling import VoxelGridSampler


def _approximate_ois(**kwargs):
    """The approximate OIS-based-FPS variant of Section VIII-A."""
    kwargs.setdefault("approximate", True)
    return OctreeIndexedSampler(**kwargs)


registry.register("sampler", "fps", FarthestPointSampler)
registry.register("sampler", "random", RandomSampler)
registry.register("sampler", "random+reinforce", ReinforcedRandomSampler)
registry.register("sampler", "voxelgrid", VoxelGridSampler)
registry.register("sampler", "ois", OctreeIndexedSampler)
registry.register("sampler", "ois-approx", _approximate_ois)

__all__ = [
    "FarthestPointSampler",
    "OctreeIndexedSampler",
    "RandomSampler",
    "ReinforcedRandomSampler",
    "Sampler",
    "SamplingResult",
    "VoxelGridSampler",
    "fps_counter_model",
    "ois_counter_model",
]
