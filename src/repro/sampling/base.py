"""Sampler interface and result record."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.core.metrics import OpCounters
from repro.geometry.pointcloud import PointCloud


@dataclass
class SamplingResult:
    """Output of one down-sampling run.

    Attributes
    ----------
    indices:
        Indices (into the input cloud) of the K selected points, in pick
        order.
    counters:
        Operation counts of the run, including any index-construction cost
        (e.g. the octree build for OIS).
    sampled:
        The selected sub-cloud (convenience view).
    method:
        Name of the sampler that produced the result.
    info:
        Method-specific extras (octree depth, build stats, ...).
    """

    indices: np.ndarray
    counters: OpCounters
    sampled: PointCloud
    method: str
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_samples(self) -> int:
        return int(self.indices.shape[0])

    def min_pairwise_distance(self) -> float:
        """Smallest distance between any two selected points.

        A coverage-quality proxy: FPS-style samplers maximise it, random
        sampling does not.  Quadratic in K, so only meant for analysis and
        tests, not for hot paths.
        """
        pts = self.sampled.points
        if pts.shape[0] < 2:
            return 0.0
        diff = pts[:, None, :] - pts[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=-1))
        dist[np.diag_indices_from(dist)] = np.inf
        return float(dist.min())

    def coverage_radius(self, cloud: PointCloud) -> float:
        """Largest distance from any input point to its nearest sample.

        The Hausdorff-style metric the FPS literature uses to quantify
        information loss; smaller is better.  Evaluated in chunks to bound
        memory.
        """
        samples = self.sampled.points
        worst = 0.0
        chunk = 4096
        for start in range(0, cloud.num_points, chunk):
            block = cloud.points[start : start + chunk]
            diff = block[:, None, :] - samples[None, :, :]
            nearest = np.sqrt((diff**2).sum(axis=-1)).min(axis=1)
            worst = max(worst, float(nearest.max()))
        return worst


class Sampler(abc.ABC):
    """Common interface of all down-sampling methods."""

    #: Human-readable name used in reports and figures.
    name: str = "sampler"

    @abc.abstractmethod
    def sample(self, cloud: PointCloud, num_samples: int) -> SamplingResult:
        """Down-sample ``cloud`` to ``num_samples`` points."""

    def _validate(self, cloud: PointCloud, num_samples: int) -> None:
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if cloud.num_points == 0:
            raise ValueError("cannot sample from an empty cloud")
        if num_samples > cloud.num_points:
            raise ValueError(
                f"requested {num_samples} samples from a cloud of "
                f"{cloud.num_points} points"
            )

    def _result(
        self,
        cloud: PointCloud,
        indices: np.ndarray,
        counters: OpCounters,
        info: Optional[Dict[str, Any]] = None,
    ) -> SamplingResult:
        indices = np.asarray(indices, dtype=np.intp)
        return SamplingResult(
            indices=indices,
            counters=counters,
            sampled=cloud.select(indices),
            method=self.name,
            info=info or {},
        )
