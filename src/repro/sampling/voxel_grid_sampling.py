"""Voxel-grid down-sampling baseline.

Not one of the paper's headline comparisons, but a standard point cloud
library method (keep one representative point per occupied voxel) that is
useful for ablations: it shares OIS's use of a voxel structure but not its
FPS-equivalent selection rule, which makes it a good control when studying
where OIS's quality comes from.
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import OpCounters
from repro.geometry.pointcloud import PointCloud
from repro.geometry.voxelgrid import VoxelGrid, suggest_depth
from repro.kernels import gather_ragged
from repro.sampling.base import Sampler, SamplingResult


class VoxelGridSampler(Sampler):
    """Keep the first (SFC-ordered) point of occupied voxels until K points.

    The grid depth is chosen so the number of occupied voxels is at least the
    requested sample count; if a single depth yields more occupied voxels
    than K, voxels are visited in SFC order and one point is taken from each
    until K points are collected, then the remaining points are filled from
    the most populated voxels.
    """

    name = "voxelgrid"

    def __init__(self, depth: int | None = None, seed: int = 0):
        self._depth = depth
        self._seed = seed

    def sample(self, cloud: PointCloud, num_samples: int) -> SamplingResult:
        self._validate(cloud, num_samples)
        depth = self._depth or suggest_depth(cloud.num_points)
        # Deepen until enough occupied voxels exist to cover the request.
        grid = VoxelGrid.build(cloud, depth)
        while grid.num_occupied_voxels < num_samples and depth < 12:
            depth += 1
            grid = VoxelGrid.build(cloud, depth)

        counters = OpCounters(
            # One streaming pass to voxelise, one write of the kept points.
            host_memory_reads=cloud.num_points,
            host_memory_writes=num_samples,
            node_visits=grid.num_occupied_voxels,
        )

        # Stride evenly along the SFC order: because the space-filling curve
        # preserves locality, an even stride over the occupied voxels spreads
        # the kept points over the whole cloud rather than clustering them at
        # the low-code corner.  The representative of every visited voxel is
        # its first bucket entry -- one gather over the grid's flat bucket
        # arrays instead of a ``points_in_voxel`` call per voxel (the scalar
        # loop is retained as ``kernels.reference.voxelgrid_sample_scalar``).
        take = min(num_samples, grid.num_occupied_voxels)
        positions = np.unique(
            np.linspace(0, grid.num_occupied_voxels - 1, take).round().astype(int)
        )
        selected = grid.order[grid.starts[positions]]
        if selected.shape[0] < num_samples:
            # Fill the remainder from the most populated voxels: a stable
            # descending-count sort reproduces the dict-histogram scan order,
            # and one ragged gather concatenates the candidate buckets.
            by_count = np.argsort(-grid.counts, kind="stable")
            candidates, _ = gather_ragged(
                grid.order, grid.starts[by_count], grid.counts[by_count]
            )
            fresh = candidates[~np.isin(candidates, selected)]
            selected = np.concatenate(
                [selected, fresh[: num_samples - selected.shape[0]]]
            )

        indices = np.asarray(selected[:num_samples], dtype=np.intp)
        return self._result(
            cloud,
            indices,
            counters,
            info={"depth": depth, "occupied_voxels": grid.num_occupied_voxels},
        )
