"""repro -- a reproduction of HgPCN (MICRO 2024).

HgPCN is an end-to-end heterogeneous architecture for embedded point cloud
inference.  This package reimplements, from scratch in Python, the paper's
two contributions -- Octree-Indexed Sampling (OIS) for the pre-processing
phase and Voxel-Expanded Gathering (VEG) for the data structuring step of
the inference phase -- together with every substrate they depend on: the
octree spatial index, the samplers and neighbor-gathering baselines, a numpy
PointNet++, analytic hardware cost models of the CPU/GPU/FPGA platforms and
of the PointACC and Mesorasi accelerators, and synthetic datasets with the
statistics of the paper's four benchmarks.

The serving entry point is the :class:`~repro.session.Session`, which keeps
constructed networks, gatherers, and samplers warm across frames; components
are addressed by string names through :mod:`repro.registry`.

Quick start::

    from repro import HgPCNConfig, Session
    from repro.datasets import KittiLikeDataset

    dataset = KittiLikeDataset(num_frames=2, scale=0.01)
    session = Session(config=HgPCNConfig.for_task(input_size=1024),
                      task="semantic_segmentation")
    response = session.run(dataset.generate_frame(0))
    print(response.result.breakdown.as_dict())

See DESIGN.md for the architecture (registry, session, engines);
``python benchmarks/run_all.py --exhibits`` prints the paper-vs-measured
tables, and the default mode benchmarks the vectorized kernels against
their scalar references (``BENCH_kernels.json``).
"""

from repro import registry
from repro.core.config import (
    HgPCNConfig,
    InferenceEngineConfig,
    PreprocessingConfig,
    SystemConfig,
)
from repro.core.engine import InferenceEngine, PreprocessingEngine
from repro.core.metrics import LatencyBreakdown, OpCounters
from repro.core.pipeline import EndToEndResult, HgPCNSystem
from repro.geometry.pointcloud import PointCloud
from repro.registry import available, create
from repro.session import BatchResult, FrameRequest, FrameResponse, Session

__version__ = "1.1.0"

__all__ = [
    "BatchResult",
    "EndToEndResult",
    "FrameRequest",
    "FrameResponse",
    "HgPCNConfig",
    "HgPCNSystem",
    "InferenceEngine",
    "InferenceEngineConfig",
    "LatencyBreakdown",
    "OpCounters",
    "PointCloud",
    "PreprocessingConfig",
    "PreprocessingEngine",
    "Session",
    "SystemConfig",
    "available",
    "create",
    "registry",
    "__version__",
]
