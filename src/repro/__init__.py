"""repro -- a reproduction of HgPCN (MICRO 2024).

HgPCN is an end-to-end heterogeneous architecture for embedded point cloud
inference.  This package reimplements, from scratch in Python, the paper's
two contributions -- Octree-Indexed Sampling (OIS) for the pre-processing
phase and Voxel-Expanded Gathering (VEG) for the data structuring step of
the inference phase -- together with every substrate they depend on: the
octree spatial index, the samplers and neighbor-gathering baselines, a numpy
PointNet++, analytic hardware cost models of the CPU/GPU/FPGA platforms and
of the PointACC and Mesorasi accelerators, and synthetic datasets with the
statistics of the paper's four benchmarks.

Quick start::

    from repro import HgPCNSystem, HgPCNConfig
    from repro.datasets import KittiLikeDataset

    dataset = KittiLikeDataset(num_frames=2, scale=0.01)
    system = HgPCNSystem(config=HgPCNConfig.for_task(input_size=1024),
                         task="semantic_segmentation")
    result = system.process_frame(dataset.generate_frame(0))
    print(result.breakdown.as_dict())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.
"""

from repro.core.config import (
    HgPCNConfig,
    InferenceEngineConfig,
    PreprocessingConfig,
    SystemConfig,
)
from repro.core.engine import InferenceEngine, PreprocessingEngine
from repro.core.metrics import LatencyBreakdown, OpCounters
from repro.core.pipeline import EndToEndResult, HgPCNSystem
from repro.geometry.pointcloud import PointCloud

__version__ = "1.0.0"

__all__ = [
    "EndToEndResult",
    "HgPCNConfig",
    "HgPCNSystem",
    "InferenceEngine",
    "InferenceEngineConfig",
    "LatencyBreakdown",
    "OpCounters",
    "PointCloud",
    "PreprocessingConfig",
    "PreprocessingEngine",
    "SystemConfig",
    "__version__",
]
