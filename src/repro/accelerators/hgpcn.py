"""The HgPCN Inference Engine model (DSU + FCU).

Data structuring runs on the Data Structuring Unit: per central point only
the last voxel-expansion shell is distance-sorted (Section VI), so the sort
workload is a small constant per centroid instead of the whole input.  The
feature computation runs on the commercial-DLA-style systolic array.  The two
units are pipelined through the input buffer, so the phase latency is the
maximum of the two plus a small drain/fill overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.accelerators.base import (
    InferenceAccelerator,
    InferenceReport,
    InferenceWorkloadSpec,
)
from repro.core.metrics import LatencyBreakdown
from repro.datastructuring.veg import VEGRunStats
from repro.hardware.dsu import DataStructuringUnit
from repro.hardware.fcu import FeatureComputationUnit
from repro.hardware.interconnect import InterconnectModel
from repro.hardware.systolic import SystolicArray


@dataclass
class HgPCNInferenceAccelerator(InferenceAccelerator):
    """HgPCN Inference Engine: VEG-based DSU feeding a 16x16 systolic FCU."""

    name: str = "hgpcn"
    dsu: DataStructuringUnit = field(default_factory=DataStructuringUnit)
    fcu: FeatureComputationUnit = field(
        default_factory=lambda: FeatureComputationUnit(array=SystolicArray())
    )
    interconnect: InterconnectModel = field(default_factory=InterconnectModel)
    #: Average size of the last expansion shell relative to the gathering
    #: size, used by the analytic path; the measured-statistics path
    #: (``measured_run_stats``) overrides it.
    last_shell_factor: float = 2.5
    #: Pipeline fill/drain overhead between DSU and FCU, seconds.
    pipeline_overhead_s: float = 2.0e-5

    def inference_report(
        self,
        workload: InferenceWorkloadSpec,
        measured_run_stats: Optional[dict[str, VEGRunStats]] = None,
    ) -> InferenceReport:
        """Latency report; ``measured_run_stats`` maps layer name to the VEG
        statistics measured by the functional implementation (when available
        they replace the analytic average-shell assumption)."""
        breakdown = LatencyBreakdown()

        ds_seconds = 0.0
        for layer in workload.gather_layers():
            if measured_run_stats and layer.name in measured_run_stats:
                run_stats = measured_run_stats[layer.name]
            else:
                run_stats = self.dsu.synthetic_run_stats(
                    num_centroids=layer.num_centroids,
                    neighbors=layer.neighbors,
                    mean_last_shell=self.last_shell_factor * layer.neighbors,
                )
            ds_seconds += self.dsu.seconds_for_run(run_stats, layer.neighbors)
        breakdown.add("data_structuring", ds_seconds)

        fc_seconds = self.fcu.seconds_for_workload(workload.network_workload())
        breakdown.add("feature_computation", fc_seconds)

        # Output transfer of the logits back to the host plus pipeline fill.
        output_bytes = workload.input_size * 4 * 16
        breakdown.add(
            "overhead",
            self.pipeline_overhead_s
            + self.interconnect.transfer_seconds(output_bytes),
        )
        return InferenceReport(
            accelerator=self.name,
            workload=workload,
            breakdown=breakdown,
            overlapped=True,
            details={
                "dsu_frequency_hz": self.dsu.frequency_hz,
                "fcu_macs_per_cycle": self.fcu.array.macs_per_cycle,
            },
        )
