"""Shared abstractions of the accelerator comparison (Figure 14).

An :class:`InferenceWorkloadSpec` describes one inference-phase workload the
way the paper's evaluation does: a Table I task (dataset, model variant,
input size) plus the gathering size.  From it every accelerator model derives

* the **data structuring layers** -- for each set-abstraction layer, how many
  central points gather from how large a candidate pool; and
* the **feature computation workload** -- the MVM layer list of the
  PointNet++ variant.

Accelerators differ in how they execute those two parts, which is exactly
the comparison the paper draws.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.metrics import LatencyBreakdown
from repro.network.workload import NetworkWorkload, synthetic_pointnet2_workload


@dataclass(frozen=True)
class GatherLayerSpec:
    """One data structuring layer: M centroids over a pool of N candidates."""

    name: str
    num_centroids: int
    pool_size: int
    neighbors: int


@dataclass(frozen=True)
class InferenceWorkloadSpec:
    """One inference-phase workload of the Figure 14 comparison."""

    dataset: str
    task: str
    input_size: int
    neighbors: int = 32
    input_feature_channels: int = 0

    def __post_init__(self) -> None:
        if self.input_size <= 0:
            raise ValueError("input_size must be positive")
        if self.neighbors <= 0:
            raise ValueError("neighbors must be positive")
        if self.task not in (
            "classification",
            "part_segmentation",
            "semantic_segmentation",
        ):
            raise ValueError(f"unknown task {self.task!r}")

    # ------------------------------------------------------------------
    def gather_layers(self) -> List[GatherLayerSpec]:
        """Data structuring layers of the PointNet++ variant for this task."""
        if self.task == "classification":
            sa1 = max(1, self.input_size // 2)
            sa2 = max(1, self.input_size // 8)
        else:
            sa1 = max(1, self.input_size // 4)
            sa2 = max(1, self.input_size // 16)
        return [
            GatherLayerSpec(
                name="sa1",
                num_centroids=sa1,
                pool_size=self.input_size,
                neighbors=self.neighbors,
            ),
            GatherLayerSpec(
                name="sa2",
                num_centroids=sa2,
                pool_size=sa1,
                neighbors=min(64, self.neighbors * 2),
            ),
        ]

    def network_workload(self) -> NetworkWorkload:
        """The MVM workload of the PointNet++ variant for this task."""
        return synthetic_pointnet2_workload(
            input_size=self.input_size,
            task=self.task,
            neighbors=self.neighbors,
            input_feature_channels=self.input_feature_channels,
        )

    @classmethod
    def from_benchmark(cls, name: str, neighbors: int = 32) -> "InferenceWorkloadSpec":
        """Build the spec for a Table I benchmark row."""
        from repro.datasets.base import get_benchmark

        spec = get_benchmark(name)
        return cls(
            dataset=spec.name,
            task=spec.task,
            input_size=spec.input_size,
            neighbors=neighbors,
        )


@dataclass
class InferenceReport:
    """Latency report of one accelerator on one workload."""

    accelerator: str
    workload: InferenceWorkloadSpec
    breakdown: LatencyBreakdown
    #: Whether data structuring and feature computation overlap on this
    #: platform (systolic array fed while gathering continues).
    overlapped: bool = True
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def data_structuring_seconds(self) -> float:
        return self.breakdown.seconds_for("data_structuring")

    @property
    def feature_computation_seconds(self) -> float:
        return self.breakdown.seconds_for("feature_computation")

    @property
    def overhead_seconds(self) -> float:
        return self.breakdown.seconds_for("overhead")

    def total_seconds(self) -> float:
        """End-to-inference latency honouring the overlap model."""
        ds = self.data_structuring_seconds
        fc = self.feature_computation_seconds
        body = max(ds, fc) if self.overlapped else ds + fc
        return body + self.overhead_seconds

    def speedup_over(self, other: "InferenceReport") -> float:
        """How much faster *this* report is than ``other`` (>1 means faster)."""
        mine = self.total_seconds()
        if mine <= 0:
            raise ValueError("cannot compute speedup of a zero-latency report")
        return other.total_seconds() / mine


class InferenceAccelerator(abc.ABC):
    """Interface of every inference-phase platform model."""

    name: str = "accelerator"

    @abc.abstractmethod
    def inference_report(
        self, workload: InferenceWorkloadSpec
    ) -> InferenceReport:
        """Estimate the inference-phase latency of ``workload``."""

    def inference_seconds(self, workload: InferenceWorkloadSpec) -> float:
        return self.inference_report(workload).total_seconds()
