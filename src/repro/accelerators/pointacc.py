"""PointACC baseline model (Lin et al., MICRO 2021).

PointACC accelerates the data structuring step with a Mapping Unit: for each
central point it computes the distance to every candidate of the input point
cloud and ranks them with a bitonic sorting network; feature computation runs
on a systolic array (the paper's comparison configures 16x16 for everyone).
The crucial property for the Figure 14/15 comparison is that the Mapping
Unit's sort operates over the *entire input point cloud* per centroid,
whereas HgPCN's DSU sorts only the last voxel-expansion shell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.accelerators.base import (
    InferenceAccelerator,
    InferenceReport,
    InferenceWorkloadSpec,
)
from repro.core.metrics import LatencyBreakdown
from repro.hardware.bitonic import BitonicSorter
from repro.hardware.fcu import FeatureComputationUnit
from repro.hardware.interconnect import InterconnectModel
from repro.hardware.systolic import SystolicArray


@dataclass
class PointACCModel(InferenceAccelerator):
    """Mapping Unit (full-range distance + bitonic ranking) + systolic array."""

    name: str = "pointacc"
    frequency_hz: float = 1.0e9
    #: Parallel distance-computation lanes of the Mapping Unit.
    distance_lanes: int = 16
    sorter: BitonicSorter = field(
        default_factory=lambda: BitonicSorter(comparators=16, frequency_hz=1.0e9)
    )
    fcu: FeatureComputationUnit = field(
        default_factory=lambda: FeatureComputationUnit(array=SystolicArray())
    )
    interconnect: InterconnectModel = field(default_factory=InterconnectModel)
    #: Whether the Mapping Unit overlaps with the systolic array.  PointACC
    #: pipelines the two, but the mapping results of a layer must be complete
    #: before that layer's matrix work can stream, so across the shallow
    #: PointNet++ layer stack the achieved overlap is small; the default
    #: models the phases as serialised, which reproduces the paper's measured
    #: speedup range (see EXPERIMENTS.md).
    overlapped: bool = False

    def data_structuring_seconds(self, workload: InferenceWorkloadSpec) -> float:
        total_cycles = 0
        for layer in workload.gather_layers():
            distance_cycles = math.ceil(layer.pool_size / self.distance_lanes)
            sort_cycles = self.sorter.cycles_to_sort(layer.pool_size)
            total_cycles += layer.num_centroids * (distance_cycles + sort_cycles)
        return total_cycles / self.frequency_hz

    def inference_report(self, workload: InferenceWorkloadSpec) -> InferenceReport:
        breakdown = LatencyBreakdown()
        breakdown.add("data_structuring", self.data_structuring_seconds(workload))
        breakdown.add(
            "feature_computation",
            self.fcu.seconds_for_workload(workload.network_workload()),
        )
        output_bytes = workload.input_size * 4 * 16
        breakdown.add("overhead", self.interconnect.transfer_seconds(output_bytes))
        return InferenceReport(
            accelerator=self.name,
            workload=workload,
            breakdown=breakdown,
            overlapped=self.overlapped,
            details={"distance_lanes": self.distance_lanes},
        )
