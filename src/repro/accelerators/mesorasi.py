"""Mesorasi baseline model (Feng et al., MICRO 2020).

Mesorasi's *delayed aggregation* decouples neighbor aggregation from the MLP
so the matrix work shrinks (the MLP runs once per point instead of once per
gathered neighbor) and the neighbor search can overlap with the feature
computation.  However the neighbor search itself still runs on the
general-purpose GPU cores, and the paper observes that this remains the
dominant latency ("the inference speed is still largely limited by the
latency of the data structuring step").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accelerators.base import (
    InferenceAccelerator,
    InferenceReport,
    InferenceWorkloadSpec,
)
from repro.accelerators.gpu import gpu_gather_counters
from repro.core.metrics import LatencyBreakdown
from repro.hardware.devices import DeviceProfile, get_device
from repro.hardware.fcu import FeatureComputationUnit
from repro.hardware.interconnect import InterconnectModel
from repro.hardware.systolic import SystolicArray
from repro.network.workload import NetworkWorkload


@dataclass
class MesorasiModel(InferenceAccelerator):
    """Delayed aggregation: GPU-side neighbor search + systolic array MLPs."""

    name: str = "mesorasi"
    #: GPU used for the data structuring step (an embedded-class GPU in the
    #: original evaluation).
    gpu_profile: DeviceProfile | str = "jetson_xavier_nx"
    fcu: FeatureComputationUnit = field(
        default_factory=lambda: FeatureComputationUnit(array=SystolicArray())
    )
    interconnect: InterconnectModel = field(default_factory=InterconnectModel)
    #: MAC reduction of delayed aggregation: the per-neighbor MLP collapses to
    #: a per-point MLP plus a cheap aggregation, roughly halving the MVM work
    #: of the set-abstraction layers.
    delayed_aggregation_factor: float = 0.55
    #: Per-gather-layer overhead: the GPU-side neighbor search issues many
    #: small kernels and its results must be synchronised and marshalled into
    #: the accelerator's buffers before the layer's matrix work can stream.
    per_layer_overhead_s: float = 2.5e-3
    overlapped: bool = True

    def _gpu(self) -> DeviceProfile:
        if isinstance(self.gpu_profile, str):
            return get_device(self.gpu_profile)
        return self.gpu_profile

    # ------------------------------------------------------------------
    def data_structuring_seconds(self, workload: InferenceWorkloadSpec) -> float:
        gpu = self._gpu()
        seconds = 0.0
        for layer in workload.gather_layers():
            counters = gpu_gather_counters(layer)
            seconds += gpu.estimate_latency(counters) + self.per_layer_overhead_s
        return seconds

    def _reduced_workload(self, workload: InferenceWorkloadSpec) -> NetworkWorkload:
        full = workload.network_workload()
        reduced = NetworkWorkload()
        for layer in full.layers:
            is_sa_mlp = layer.name.startswith("sa")
            factor = self.delayed_aggregation_factor if is_sa_mlp else 1.0
            reduced.layers.append(
                type(layer)(
                    name=layer.name,
                    num_vectors=max(1, int(layer.num_vectors * factor)),
                    mac_ops=max(1, int(layer.mac_ops * factor)),
                    output_channels=layer.output_channels,
                )
            )
        return reduced

    def inference_report(self, workload: InferenceWorkloadSpec) -> InferenceReport:
        breakdown = LatencyBreakdown()
        breakdown.add("data_structuring", self.data_structuring_seconds(workload))
        breakdown.add(
            "feature_computation",
            self.fcu.seconds_for_workload(self._reduced_workload(workload)),
        )
        output_bytes = workload.input_size * 4 * 16
        breakdown.add("overhead", self.interconnect.transfer_seconds(output_bytes))
        return InferenceReport(
            accelerator=self.name,
            workload=workload,
            breakdown=breakdown,
            overlapped=self.overlapped,
            details={
                "delayed_aggregation_factor": self.delayed_aggregation_factor,
            },
        )
