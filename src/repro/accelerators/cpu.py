"""General-purpose CPU executor model (Intel Xeon W-2255 baseline).

The CPU appears in the paper in three roles: the software baseline of the
OIS-vs-FPS study (Figures 9-11, both algorithms on the CPU), the host side of
the HgPCN Pre-processing Engine (octree build), and an end-to-end baseline of
the motivation study (Figure 3).  CPU execution serialises compute and memory
poorly on these pointer-heavy kernels, which the ``overlap=False`` roofline
setting reflects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerators.base import (
    InferenceAccelerator,
    InferenceReport,
    InferenceWorkloadSpec,
)
from repro.core.metrics import LatencyBreakdown, OpCounters
from repro.hardware.devices import DeviceProfile, get_device
from repro.sampling.fps import fps_counter_model
from repro.sampling.ois import ois_counter_model


@dataclass
class CPUExecutor(InferenceAccelerator):
    """A CPU running either phase of the pipeline."""

    profile: DeviceProfile | str = "xeon_w2255"
    name: str = "cpu"

    def __post_init__(self) -> None:
        if isinstance(self.profile, str):
            self.profile = get_device(self.profile)
        self.name = f"cpu:{self.profile.name}"

    # ------------------------------------------------------------------
    # Pre-processing phase
    # ------------------------------------------------------------------
    def preprocessing_seconds(
        self,
        num_points: int,
        num_samples: int,
        method: str = "fps",
        octree_depth: int = 8,
    ) -> float:
        """Down-sampling latency of one raw frame on this CPU."""
        if method == "fps":
            counters = fps_counter_model(num_points, num_samples)
        elif method == "random":
            counters = OpCounters(
                host_memory_reads=num_samples, host_memory_writes=num_samples
            )
        elif method == "random+reinforce":
            counters = OpCounters(
                host_memory_reads=num_samples * 17,
                host_memory_writes=num_samples,
                distance_computations=num_samples * 16,
                mac_ops=num_samples * (16 * 3 * 32 + 32 * 32),
            )
        elif method == "ois":
            counters = ois_counter_model(num_points, num_samples, octree_depth)
        else:
            raise ValueError(f"unknown pre-processing method {method!r}")
        return self.profile.estimate_latency(counters, overlap=False)

    def ois_breakdown_seconds(
        self, num_points: int, num_samples: int, octree_depth: int
    ) -> LatencyBreakdown:
        """OIS-on-CPU latency split into octree build vs sampling walk.

        Used by the Figure 11 overhead analysis: the build phase streams the
        whole frame, the walk touches only the octree and the picked points.
        """
        build = ois_counter_model(
            num_points, num_samples, octree_depth, include_build=True
        )
        walk = ois_counter_model(
            num_points, num_samples, octree_depth, include_build=False
        )
        build_only = OpCounters(
            host_memory_reads=build.host_memory_reads - walk.host_memory_reads,
            host_memory_writes=build.host_memory_writes - walk.host_memory_writes,
            compare_ops=build.compare_ops - walk.compare_ops,
        )
        breakdown = LatencyBreakdown()
        breakdown.add(
            "octree_build",
            self.profile.estimate_latency(build_only, overlap=False),
        )
        breakdown.add(
            "sampling_walk", self.profile.estimate_latency(walk, overlap=False)
        )
        return breakdown

    # ------------------------------------------------------------------
    # Inference phase
    # ------------------------------------------------------------------
    def inference_report(self, workload: InferenceWorkloadSpec) -> InferenceReport:
        breakdown = LatencyBreakdown()

        ds_seconds = 0.0
        for layer in workload.gather_layers():
            counters = OpCounters()
            candidates = layer.num_centroids * layer.pool_size
            counters.distance_computations = candidates
            counters.compare_ops = candidates
            counters.host_memory_reads = candidates
            counters.host_memory_writes = layer.num_centroids * layer.neighbors
            ds_seconds += self.profile.estimate_latency(counters, overlap=False)
        breakdown.add("data_structuring", ds_seconds)

        network = workload.network_workload()
        fc_counters = OpCounters(
            mac_ops=network.total_mac_ops(),
            host_memory_reads=network.total_output_activations(),
        )
        breakdown.add(
            "feature_computation",
            self.profile.estimate_latency(fc_counters, overlap=False),
        )
        breakdown.add("overhead", self.profile.invocation_overhead_s)
        return InferenceReport(
            accelerator=self.name,
            workload=workload,
            breakdown=breakdown,
            overlapped=False,
        )
