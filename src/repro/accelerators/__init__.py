"""Accelerator and device executor models for the Figure 14 comparison.

* :class:`~repro.accelerators.hgpcn.HgPCNInferenceAccelerator` -- the paper's
  Inference Engine (DSU + FCU on the FPGA).
* :class:`~repro.accelerators.pointacc.PointACCModel` -- PointACC's Mapping
  Unit (full-input bitonic sort) + systolic array.
* :class:`~repro.accelerators.mesorasi.MesorasiModel` -- Mesorasi's delayed
  aggregation with GPU-side neighbor search overlapped with the array.
* :class:`~repro.accelerators.gpu.GPUExecutor` / :class:`~repro.accelerators.
  cpu.CPUExecutor` -- general-purpose platforms used for the end-to-end
  baselines (Figures 3 and 12) and the Jetson comparison of Figure 14.
"""

from repro import registry
from repro.accelerators.base import (
    GatherLayerSpec,
    InferenceAccelerator,
    InferenceReport,
    InferenceWorkloadSpec,
)
from repro.accelerators.cpu import CPUExecutor
from repro.accelerators.gpu import GPUExecutor
from repro.accelerators.hgpcn import HgPCNInferenceAccelerator
from repro.accelerators.mesorasi import MesorasiModel
from repro.accelerators.pointacc import PointACCModel

registry.register("accelerator", "hgpcn", HgPCNInferenceAccelerator)
registry.register("accelerator", "pointacc", PointACCModel)
registry.register("accelerator", "mesorasi", MesorasiModel)
registry.register("accelerator", "gpu", GPUExecutor)
registry.register("accelerator", "cpu", CPUExecutor)

__all__ = [
    "CPUExecutor",
    "GPUExecutor",
    "GatherLayerSpec",
    "HgPCNInferenceAccelerator",
    "InferenceAccelerator",
    "InferenceReport",
    "InferenceWorkloadSpec",
    "MesorasiModel",
    "PointACCModel",
]
