"""General-purpose GPU executor model.

Used in two roles:

* the **Jetson Xavier NX** inference baseline of Figure 14 (data structuring
  and feature computation both on the GPU, no overlap between the irregular
  gather kernels and the dense MLP kernels);
* the **desktop GPU (RTX 4060 Ti)** end-to-end baseline of the motivation
  study (Figure 3), including the FPS pre-processing phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.accelerators.base import (
    GatherLayerSpec,
    InferenceAccelerator,
    InferenceReport,
    InferenceWorkloadSpec,
)
from repro.core.metrics import LatencyBreakdown, OpCounters
from repro.hardware.devices import DeviceProfile, get_device
from repro.sampling.fps import fps_counter_model
from repro.sampling.ois import ois_counter_model


def gpu_gather_counters(layer: GatherLayerSpec) -> OpCounters:
    """Operation counts of one KNN gather layer on a general-purpose GPU.

    Framework implementations compute the full distance matrix and then sort
    each centroid's distance row to take the top k (a full per-row sort, not
    a selection network), so the comparison count carries a ``log2(pool)``
    factor on top of the distance computations.  This sorting inefficiency is
    a large part of why the data structuring step dominates PCN inference on
    GPUs (Section III-B).
    """
    counters = OpCounters()
    candidates = layer.num_centroids * layer.pool_size
    sort_factor = max(1, int(math.ceil(math.log2(max(2, layer.pool_size)))))
    counters.distance_computations = candidates
    counters.compare_ops = candidates * sort_factor
    counters.host_memory_reads = candidates
    counters.host_memory_writes = layer.num_centroids * layer.neighbors
    return counters


@dataclass
class GPUExecutor(InferenceAccelerator):
    """A GPU running both phases with framework/kernel-launch overheads."""

    profile: DeviceProfile | str = "jetson_xavier_nx"
    #: Kernel launches per gather layer.  Framework implementations of the
    #: set-abstraction grouping issue many small kernels (pairwise distances,
    #: chunked top-k, index gathers for coordinates and features,
    #: re-centering, padding), so the per-layer launch overhead is a large
    #: constant at small input sizes.
    kernels_per_gather_layer: int = 12
    #: Kernel launches per MLP layer.
    kernels_per_mlp_layer: int = 1
    name: str = "gpu"

    def __post_init__(self) -> None:
        if isinstance(self.profile, str):
            self.profile = get_device(self.profile)
        self.name = f"gpu:{self.profile.name}"

    # ------------------------------------------------------------------
    # Inference phase (Figure 14 baseline)
    # ------------------------------------------------------------------
    def data_structuring_seconds(self, workload: InferenceWorkloadSpec) -> float:
        seconds = 0.0
        for layer in workload.gather_layers():
            counters = gpu_gather_counters(layer)
            seconds += self.profile.estimate_latency(counters)
            seconds += (
                self.kernels_per_gather_layer * self.profile.invocation_overhead_s
            )
        return seconds

    def feature_computation_seconds(self, workload: InferenceWorkloadSpec) -> float:
        network = workload.network_workload()
        counters = OpCounters(mac_ops=network.total_mac_ops())
        # Activations stream through device memory once per layer.
        counters.host_memory_reads = network.total_output_activations()
        seconds = self.profile.estimate_latency(counters)
        seconds += (
            len(network.layers)
            * self.kernels_per_mlp_layer
            * self.profile.invocation_overhead_s
        )
        return seconds

    def inference_report(self, workload: InferenceWorkloadSpec) -> InferenceReport:
        breakdown = LatencyBreakdown()
        breakdown.add("data_structuring", self.data_structuring_seconds(workload))
        breakdown.add(
            "feature_computation", self.feature_computation_seconds(workload)
        )
        breakdown.add("overhead", self.profile.invocation_overhead_s)
        return InferenceReport(
            accelerator=self.name,
            workload=workload,
            breakdown=breakdown,
            overlapped=False,
        )

    # ------------------------------------------------------------------
    # Pre-processing phase (Figures 3 and 12 baselines)
    # ------------------------------------------------------------------
    def preprocessing_seconds(
        self,
        num_points: int,
        num_samples: int,
        method: str = "fps",
        octree_depth: int = 8,
    ) -> float:
        """Down-sampling latency of one raw frame on this GPU."""
        if method == "fps":
            counters = fps_counter_model(num_points, num_samples)
        elif method == "random":
            counters = OpCounters(
                host_memory_reads=num_samples, host_memory_writes=num_samples
            )
        elif method == "random+reinforce":
            counters = OpCounters(
                host_memory_reads=num_samples * 17,
                host_memory_writes=num_samples,
                distance_computations=num_samples * 16,
                mac_ops=num_samples * (16 * 3 * 32 + 32 * 32),
            )
        elif method == "ois":
            counters = ois_counter_model(num_points, num_samples, octree_depth)
        else:
            raise ValueError(f"unknown pre-processing method {method!r}")
        return self.profile.estimate_latency(counters)
