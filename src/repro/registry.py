"""String-addressable component registry (the microkernel seam).

Every pluggable service of the reproduction -- down-samplers, neighbor
gatherers, inference accelerators, datasets, and the two engines -- registers
a factory here under a short string name.  Call sites then compose the
pipeline declaratively::

    from repro import registry

    sampler = registry.create("sampler", "ois", seed=0)
    registry.available("accelerator")
    # ['cpu', 'gpu', 'hgpcn', 'mesorasi', 'pointacc']

The registry keeps the core (:mod:`repro.session`, :mod:`repro.cli`, the
analysis sweeps) free of hardcoded import lists: new components become
reachable everywhere the moment they register, which is the architectural
seam the serving-oriented roadmap items (multi-backend, sharding) plug into.

Built-in implementations register when their subpackage is imported.  In
practice ``import repro`` eagerly imports every registering subpackage; the
lazy ``_load_builtins`` path is a safety net that keeps lookups complete if
the package ``__init__`` ever trims those eager imports, and keeps this
module itself free of top-level ``repro`` imports (so subpackages can import
it mid-initialisation without cycles).
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, List, Optional, Tuple

Factory = Callable[..., Any]

#: The component kinds the registry knows about.
KINDS: Tuple[str, ...] = (
    "sampler",
    "gatherer",
    "accelerator",
    "dataset",
    "engine",
    "backend",
    "traffic",
)

#: Modules whose import registers the built-in implementations of each kind.
_BUILTIN_MODULES: Dict[str, Tuple[str, ...]] = {
    "sampler": ("repro.sampling",),
    "gatherer": ("repro.datastructuring",),
    "accelerator": ("repro.accelerators",),
    "dataset": ("repro.datasets",),
    "engine": ("repro.core",),
    "backend": ("repro.network.backends",),
    "traffic": ("repro.serving.traffic",),
}

_factories: Dict[str, Dict[str, Factory]] = {kind: {} for kind in KINDS}
_loaded_kinds: set = set()


class UnknownComponentError(KeyError):
    """Raised for a ``(kind, name)`` lookup that matches nothing.

    The message lists the registered choices so a typo on the command line or
    in a config file is self-diagnosing.
    """

    def __init__(self, kind: str, name: str, choices: List[str]):
        self.kind = kind
        self.name = name
        self.choices = choices
        super().__init__(kind, name)

    def __str__(self) -> str:
        listing = ", ".join(repr(c) for c in self.choices) or "<none registered>"
        return (
            f"unknown {self.kind} {self.name!r}; "
            f"available {self.kind}s: {listing}"
        )


class DuplicateComponentError(ValueError):
    """Raised when a name is registered twice without ``overwrite=True``."""


def _check_kind(kind: str) -> None:
    if kind not in KINDS:
        raise UnknownComponentError("kind", kind, list(KINDS))


def _load_builtins(kind: str) -> None:
    """Import the subpackages that register the built-ins of ``kind``."""
    if kind in _loaded_kinds:
        return
    # Mark first: the imported modules call register() re-entrantly.  Undo on
    # failure so a broken import surfaces on every lookup instead of leaving
    # the kind silently empty for the life of the process.
    _loaded_kinds.add(kind)
    try:
        for module in _BUILTIN_MODULES.get(kind, ()):
            importlib.import_module(module)
    except BaseException:
        _loaded_kinds.discard(kind)
        raise


def register(
    kind: str,
    name: str,
    factory: Optional[Factory] = None,
    *,
    overwrite: bool = False,
) -> Factory:
    """Register ``factory`` (a class or callable) as ``(kind, name)``.

    Usable directly -- ``register("sampler", "fps", FarthestPointSampler)`` --
    or as a decorator::

        @register("gatherer", "my-gatherer")
        class MyGatherer(Gatherer):
            ...
    """
    _check_kind(kind)
    if factory is None:
        def decorator(cls: Factory) -> Factory:
            register(kind, name, cls, overwrite=overwrite)
            return cls

        return decorator
    if not callable(factory):
        raise TypeError(f"factory for {kind} {name!r} must be callable")
    if not overwrite and name in _factories[kind]:
        raise DuplicateComponentError(
            f"{kind} {name!r} is already registered; pass overwrite=True to replace"
        )
    _factories[kind][name] = factory
    return factory


def unregister(kind: str, name: str) -> None:
    """Remove ``(kind, name)``; silently ignores missing names."""
    _check_kind(kind)
    _factories[kind].pop(name, None)


def get_factory(kind: str, name: str) -> Factory:
    """Return the registered factory, raising :class:`UnknownComponentError`."""
    _check_kind(kind)
    _load_builtins(kind)
    try:
        return _factories[kind][name]
    except KeyError:
        raise UnknownComponentError(kind, name, available(kind)) from None


def create(kind: str, name: str, **kwargs: Any) -> Any:
    """Instantiate the component registered as ``(kind, name)``."""
    return get_factory(kind, name)(**kwargs)


def is_registered(kind: str, name: str) -> bool:
    _check_kind(kind)
    _load_builtins(kind)
    return name in _factories[kind]


def available(kind: Optional[str] = None) -> Any:
    """Sorted names of one ``kind``, or a ``{kind: names}`` dict for all."""
    if kind is None:
        return {k: available(k) for k in KINDS}
    _check_kind(kind)
    _load_builtins(kind)
    return sorted(_factories[kind])
